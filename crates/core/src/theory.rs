//! Theoretical effective range of DLB (paper Sec. 4.1).
//!
//! The permanent cells limit how much load can be redistributed ("DLB
//! limit"). The paper quantifies this with the *particle concentration
//! ratio* `C₀/C` (fraction of empty cells) and the *concentration factor*
//! `n = (C₀'/C') / (C₀/C)` (how much emptier the maximum domain is than
//! the average): DLB can keep load uniform while
//!
//! ```text
//! C₀/C ≤ f(m, n) = 3(m−1)² / (m²(n−1) + 3n(m−1)²)        (Eq. 8)
//! ```
//!
//! derived from requiring the maximum domain — a PE's own tile plus all
//! movable cells of its three donor neighbours,
//! `C' = [m² + 3(m−1)²]·C^(1/3)` cells — to hold at least the average
//! number of particles per PE (Eq. 3).

/// Cells in the maximum domain: `[m² + 3(m−1)²] · nc` (3-D cells; `nc =
/// C^(1/3)` cells per column).
pub fn max_domain_cells(m: usize, nc: usize) -> usize {
    assert!(m >= 1 && nc >= 1);
    (m * m + 3 * (m - 1) * (m - 1)) * nc
}

/// The DLB limit as a ratio: a PE can grow to at most
/// `(m² + 3(m−1)²)/m²` times its initial cell count (paper Fig. 4 quotes
/// "up to 2.3 times" for m = 3).
pub fn dlb_limit_ratio(m: usize) -> f64 {
    assert!(m >= 1);
    let m2 = (m * m) as f64;
    (m2 + 3.0 * ((m - 1) * (m - 1)) as f64) / m2
}

/// The theoretical upper bound `f(m, n)` on `C₀/C` (Eq. 8). Requires
/// `n ≥ 1`; returns 0 for `m = 1` (no movable cells → no balancing).
pub fn upper_bound(m: usize, n: f64) -> f64 {
    assert!(m >= 1, "m must be at least 1");
    assert!(
        n >= 1.0,
        "concentration factor n is ≥ 1 by definition, got {n}"
    );
    let m2 = (m * m) as f64;
    let w = 3.0 * ((m - 1) * (m - 1)) as f64;
    if w == 0.0 {
        return 0.0;
    }
    w / (m2 * (n - 1.0) + n * w)
}

/// Direct evaluation of the feasibility inequality (Eq. 3): the maximum
/// domain, with its `n`-fold over-representation of empty cells, can hold
/// at least the per-PE average number of particles. `upper_bound` is the
/// closed-form solution of this inequality for `C₀/C`; the two are
/// property-tested to agree.
pub fn uniform_balance_feasible(m: usize, p: usize, n: f64, c0_over_c: f64) -> bool {
    assert!(m >= 1 && p >= 1);
    assert!((0.0..1.0).contains(&c0_over_c), "C₀/C must be in [0, 1)");
    assert!(n >= 1.0);
    // Work per unit nc and unit N: C = m³·p^{3/2}··· — express everything
    // via cells-per-column counts. Take nc = m·√P (exact for square
    // layouts); C = nc³.
    let side = (p as f64).sqrt();
    let nc = m as f64 * side;
    let c = nc * nc * nc;
    let c0 = c0_over_c * c;
    let cmax = (m * m + 3 * (m - 1) * (m - 1)) as f64 * nc;
    // Non-empty cells hold N/(C−C₀) particles on average; the maximum
    // domain has cmax·(1 − n·C₀/C) non-empty cells (Eq. 2).
    let nonempty_in_max = cmax * (1.0 - n * c0_over_c);
    // Feasible when particles in the max domain ≥ N/P (divide Eq. 3 by N).
    nonempty_in_max / (c - c0) >= 1.0 / p as f64
}

/// Closed form for m = 2 (Eq. 9): `3 / (7n − 4)`.
pub fn f2(n: f64) -> f64 {
    3.0 / (7.0 * n - 4.0)
}

/// Closed form for m = 3 (Eq. 10): `4 / (7n − 3)`.
pub fn f3(n: f64) -> f64 {
    4.0 / (7.0 * n - 3.0)
}

/// Closed form for m = 4 (Eq. 11): `27 / (43n − 16)`.
pub fn f4(n: f64) -> f64 {
    27.0 / (43.0 * n - 16.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn closed_forms_match_general_formula() {
        for k in 0..200 {
            let n = 1.0 + k as f64 * 0.05;
            assert!((upper_bound(2, n) - f2(n)).abs() < 1e-12, "m=2, n={n}");
            assert!((upper_bound(3, n) - f3(n)).abs() < 1e-12, "m=3, n={n}");
            assert!((upper_bound(4, n) - f4(n)).abs() < 1e-12, "m=4, n={n}");
        }
    }

    #[test]
    fn bound_is_one_at_n_equals_one() {
        // n = 1 means empty cells are spread uniformly; any C₀/C < 1 is
        // then balanceable: f(m, 1) = 1.
        for m in 2..=8 {
            assert!((upper_bound(m, 1.0) - 1.0).abs() < 1e-12, "m={m}");
        }
    }

    #[test]
    fn monotonicity_in_m_eq_12() {
        // Paper Eq. 12: f(2,n) ≤ f(3,n) ≤ f(4,n) for n ≥ 1.
        for k in 0..100 {
            let n = 1.0 + k as f64 * 0.1;
            assert!(upper_bound(2, n) <= upper_bound(3, n) + 1e-15, "n={n}");
            assert!(upper_bound(3, n) <= upper_bound(4, n) + 1e-15, "n={n}");
        }
    }

    #[test]
    fn decreasing_in_n() {
        for m in 2..=4 {
            let mut prev = upper_bound(m, 1.0);
            for k in 1..60 {
                let n = 1.0 + k as f64 * 0.25;
                let b = upper_bound(m, n);
                assert!(b < prev, "m={m}, n={n}");
                prev = b;
            }
        }
    }

    #[test]
    fn m1_has_no_balancing_capacity() {
        assert_eq!(upper_bound(1, 1.5), 0.0);
        assert_eq!(dlb_limit_ratio(1), 1.0);
    }

    #[test]
    fn dlb_limit_matches_paper_fig4() {
        // m = 3: (9 + 12)/9 = 2.33… ("up to 2.3 times").
        assert!((dlb_limit_ratio(3) - 21.0 / 9.0).abs() < 1e-12);
        // m = 2: (4 + 3)/4 = 1.75; m = 4: (16 + 27)/16 = 2.6875.
        assert!((dlb_limit_ratio(2) - 1.75).abs() < 1e-12);
        assert!((dlb_limit_ratio(4) - 43.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn max_domain_cells_examples() {
        // Paper Fig. 5(a): m = 4, nc = 24: (16+27)·24 = 1032 cells.
        assert_eq!(max_domain_cells(4, 24), 1032);
        // Fig. 8's 2-D analogue uses m = 3: m² + 3(m−1)² = 21 columns.
        assert_eq!(max_domain_cells(3, 1), 21);
    }

    proptest! {
        /// Eq. 8 is exactly the solution of Eq. 3: feasibility ⇔
        /// C₀/C ≤ f(m, n), modulo floating-point at the boundary.
        #[test]
        fn prop_bound_equals_feasibility_frontier(
            m in 2usize..6,
            p_side in 2usize..9,
            n in 1.0f64..6.0,
            c0r in 0.0f64..0.95,
        ) {
            let p = p_side * p_side;
            // Skip configurations where the max domain has no room at all
            // (1 − n·C₀/C ≤ 0 ⇒ infeasible and f < c0r as well).
            let bound = upper_bound(m, n);
            let feasible = uniform_balance_feasible(m, p, n, c0r);
            let margin = (c0r - bound).abs();
            prop_assume!(margin > 1e-9); // away from the exact frontier
            prop_assert_eq!(feasible, c0r <= bound,
                "m={}, p={}, n={}, c0r={}, bound={}", m, p, n, c0r, bound);
        }

        /// The bound is scale-free: it never depends on P (the paper's
        /// f(m, n) has no P in it) — check via the direct inequality.
        #[test]
        fn prop_feasibility_independent_of_p(
            m in 2usize..5,
            n in 1.0f64..4.0,
            c0r in 0.0f64..0.9,
            pa in 2usize..7,
            pb in 2usize..7,
        ) {
            let bound = upper_bound(m, n);
            prop_assume!((c0r - bound).abs() > 1e-9);
            let fa = uniform_balance_feasible(m, pa * pa, n, c0r);
            let fb = uniform_balance_feasible(m, pb * pb, n, c0r);
            prop_assert_eq!(fa, fb);
        }

        #[test]
        fn prop_bound_in_unit_interval(m in 2usize..8, n in 1.0f64..50.0) {
            let b = upper_bound(m, n);
            prop_assert!(b > 0.0 && b <= 1.0 + 1e-12);
        }
    }
}

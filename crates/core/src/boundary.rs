//! Experimental boundary detection (paper Sec. 4.2).
//!
//! "We can decide an experimental boundary point in a trajectory of an MD
//! simulation by finding a time step at which the difference between the
//! maximum and the minimum of force computing time begins to increase."
//!
//! We make that operational with a two-segment changepoint fit: the
//! imbalance series `y_t = Fmax − Fmin` (or its `Fave`-normalised form) is
//! modelled as flat up to the boundary step `τ` and linearly rising after
//! it:
//!
//! ```text
//! y_t = a               for t < τ
//! y_t = a + b·(t − τ)   for t ≥ τ,  b ≥ 0
//! ```
//!
//! `τ` is chosen to minimise the least-squares error (computed in O(T)
//! total via suffix sums). A detection is only reported when the fitted
//! rise is significant relative to the noise of the flat segment, so a
//! well-balanced run that never hits the DLB limit yields `None`.

/// Result of a boundary detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boundary {
    /// Index into the series at which the sustained increase begins.
    pub index: usize,
    /// Fitted flat level before the boundary.
    pub level: f64,
    /// Fitted slope after the boundary (per sample).
    pub slope: f64,
    /// Residual sum of squares of the two-segment fit.
    pub sse: f64,
}

/// Changepoint-based boundary detector. Construct with
/// [`BoundaryDetector::default`] and override fields as needed.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryDetector {
    /// Minimum samples required in the flat (pre-boundary) segment.
    pub min_flat: usize,
    /// Minimum samples required in the rising segment.
    pub min_rise: usize,
    /// The fitted total rise `b·(T − τ)` must exceed this multiple of the
    /// flat segment's standard deviation for a boundary to be reported.
    pub significance: f64,
}

impl Default for BoundaryDetector {
    fn default() -> Self {
        Self {
            min_flat: 20,
            min_rise: 20,
            significance: 4.0,
        }
    }
}

impl BoundaryDetector {
    /// Detect the boundary in `y`; `None` when the series never starts a
    /// significant sustained rise.
    pub fn detect(&self, y: &[f64]) -> Option<Boundary> {
        let t_len = y.len();
        if t_len < self.min_flat + self.min_rise {
            return None;
        }
        assert!(
            y.iter().all(|v| v.is_finite()),
            "series contains non-finite values"
        );

        // Suffix sums over t ≥ τ of 1, t, t², y_t, t·y_t let us evaluate
        // the hinge sums Σg, Σg², Σg·y for every τ in O(1).
        let n = t_len;
        let mut s1 = vec![0.0; n + 1];
        let mut st = vec![0.0; n + 1];
        let mut st2 = vec![0.0; n + 1];
        let mut sy = vec![0.0; n + 1];
        let mut sty = vec![0.0; n + 1];
        for t in (0..n).rev() {
            let tf = t as f64;
            s1[t] = s1[t + 1] + 1.0;
            st[t] = st[t + 1] + tf;
            st2[t] = st2[t + 1] + tf * tf;
            sy[t] = sy[t + 1] + y[t];
            sty[t] = sty[t + 1] + tf * y[t];
        }
        let total_y: f64 = sy[0];
        let total_y2: f64 = y.iter().map(|v| v * v).sum();

        let mut best: Option<Boundary> = None;
        for tau in self.min_flat..=(n - self.min_rise) {
            let tauf = tau as f64;
            // Hinge sums over the full series (zero before τ).
            let sg = st[tau] - tauf * s1[tau];
            let sg2 = st2[tau] - 2.0 * tauf * st[tau] + tauf * tauf * s1[tau];
            let sgy = sty[tau] - tauf * sy[tau];
            let nt = n as f64;
            let det = nt * sg2 - sg * sg;
            if det <= 1e-12 {
                continue;
            }
            let mut b = (nt * sgy - sg * total_y) / det;
            let a;
            if b < 0.0 {
                // Constrained fit: a falling tail is "no boundary"; use
                // the flat model for this τ.
                b = 0.0;
                a = total_y / nt;
            } else {
                a = (total_y - b * sg) / nt;
            }
            // Σ(y − a − b·g)² expanded in the precomputed sums.
            let sse = (total_y2 + a * a * nt + b * b * sg2 - 2.0 * a * total_y - 2.0 * b * sgy
                + 2.0 * a * b * sg)
                .max(0.0);
            if b <= 0.0 {
                continue;
            }
            let cand = Boundary {
                index: tau,
                level: a,
                slope: b,
                sse,
            };
            if best.is_none_or(|bst| cand.sse < bst.sse) {
                best = Some(cand);
            }
        }
        let best = best?;

        // Significance: the fitted total rise must dominate the flat
        // segment's noise.
        let flat = &y[..best.index];
        let mean = flat.iter().sum::<f64>() / flat.len() as f64;
        let var = flat.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / flat.len() as f64;
        let std = var.sqrt();
        let rise = best.slope * (n - best.index) as f64;
        let scale = std.max(mean.abs() * 0.05).max(1e-12);
        (rise > self.significance * scale).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(
        flat_len: usize,
        rise_len: usize,
        level: f64,
        slope: f64,
        noise: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = Vec::with_capacity(flat_len + rise_len);
        for _ in 0..flat_len {
            y.push(level + noise * (rng.gen::<f64>() - 0.5));
        }
        for t in 0..rise_len {
            y.push(level + slope * t as f64 + noise * (rng.gen::<f64>() - 0.5));
        }
        y
    }

    #[test]
    fn clean_changepoint_is_found_exactly() {
        let y = synthetic(300, 200, 0.05, 0.002, 0.0, 0);
        let b = BoundaryDetector::default().detect(&y).expect("boundary");
        assert!(
            (b.index as i64 - 300).unsigned_abs() <= 2,
            "index {}",
            b.index
        );
        assert!((b.level - 0.05).abs() < 1e-9);
        assert!((b.slope - 0.002).abs() < 1e-9);
    }

    #[test]
    fn noisy_changepoint_is_found_approximately() {
        let y = synthetic(600, 400, 0.05, 0.001, 0.02, 42);
        let b = BoundaryDetector::default().detect(&y).expect("boundary");
        assert!(
            (b.index as i64 - 600).unsigned_abs() <= 60,
            "index {} too far from 600",
            b.index
        );
    }

    #[test]
    fn flat_noise_yields_none() {
        let y = synthetic(1000, 0, 0.05, 0.0, 0.02, 7);
        assert_eq!(BoundaryDetector::default().detect(&y), None);
    }

    #[test]
    fn decreasing_series_yields_none() {
        let y: Vec<f64> = (0..500).map(|t| 1.0 - 0.001 * t as f64).collect();
        assert_eq!(BoundaryDetector::default().detect(&y), None);
    }

    #[test]
    fn too_short_series_yields_none() {
        let y = vec![0.1; 10];
        assert_eq!(BoundaryDetector::default().detect(&y), None);
    }

    #[test]
    fn rise_from_step_zero_respects_min_flat() {
        // Pure ramp: the earliest allowed τ (min_flat) fits best.
        let y: Vec<f64> = (0..300).map(|t| 0.001 * t as f64).collect();
        let b = BoundaryDetector::default().detect(&y).expect("boundary");
        assert!(b.index <= 25, "index {}", b.index);
    }

    #[test]
    fn different_seeds_agree_within_tolerance() {
        let idx: Vec<usize> = (0..5)
            .map(|s| {
                let y = synthetic(400, 300, 0.1, 0.002, 0.03, s);
                BoundaryDetector::default()
                    .detect(&y)
                    .expect("boundary")
                    .index
            })
            .collect();
        for i in idx {
            assert!((i as i64 - 400).unsigned_abs() <= 80, "index {i}");
        }
    }

    #[test]
    fn late_small_rise_needs_significance() {
        // Rise smaller than the noise floor → no detection.
        let y = synthetic(500, 100, 0.1, 0.000002, 0.05, 3);
        assert_eq!(BoundaryDetector::default().detect(&y), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A flat series plus a genuine linear rise is always detected,
        /// with the index within a band of the true changepoint.
        #[test]
        fn prop_detects_planted_changepoints(
            flat_len in 60usize..400,
            rise_len in 60usize..300,
            level in 0.01f64..10.0,
            slope_rel in 0.002f64..0.05,
            seed in any::<u64>(),
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let slope = slope_rel * level;
            let noise = 0.02 * level;
            let mut y = Vec::with_capacity(flat_len + rise_len);
            for _ in 0..flat_len {
                y.push(level + noise * (rng.gen::<f64>() - 0.5));
            }
            for t in 0..rise_len {
                y.push(level + slope * t as f64 + noise * (rng.gen::<f64>() - 0.5));
            }
            let b = BoundaryDetector::default()
                .detect(&y)
                .expect("planted rise must be detected");
            // Within a quarter of the series of the truth (coarse, but
            // catches gross failures for any parameter combination).
            let err = (b.index as i64 - flat_len as i64).unsigned_abs() as usize;
            prop_assert!(err <= (flat_len + rise_len) / 4,
                "index {} vs true {}", b.index, flat_len);
        }

        /// Pure noise is never reported as a boundary.
        #[test]
        fn prop_no_false_positives_on_noise(
            len in 100usize..600,
            level in 0.01f64..10.0,
            seed in any::<u64>(),
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let y: Vec<f64> = (0..len)
                .map(|_| level * (1.0 + 0.05 * (rng.gen::<f64>() - 0.5)))
                .collect();
            prop_assert_eq!(BoundaryDetector::default().detect(&y), None);
        }

        /// Scaling the whole series by a positive constant scales the fit
        /// but never changes the detected index.
        #[test]
        fn prop_detection_is_scale_invariant(scale in 0.01f64..100.0) {
            let y: Vec<f64> = (0..400)
                .map(|t| if t < 250 { 1.0 } else { 1.0 + 0.01 * (t - 250) as f64 })
                .collect();
            let ys: Vec<f64> = y.iter().map(|v| v * scale).collect();
            let a = BoundaryDetector::default().detect(&y).expect("boundary");
            let b = BoundaryDetector::default().detect(&ys).expect("boundary");
            prop_assert_eq!(a.index, b.index);
        }
    }
}

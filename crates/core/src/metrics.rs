//! Concentration metrics (paper Sec. 4.1–4.2 and Fig. 8).
//!
//! Per time step the simulator produces one [`PeCellStats`] per PE; from
//! these we compute the paper's measurement quantities:
//!
//! - `C₀/C` — the particle concentration ratio (fraction of empty cells in
//!   the whole space);
//! - `C'`, `C₀'` — cells / empty cells of the *maximum domain*;
//! - `n = (C₀'/C') / (C₀/C)` — the concentration factor, estimated the way
//!   the paper does: "n is estimated by using the average C₀'/C' of two
//!   PEs: one PE has the maximum number of cells, and the other PE has the
//!   maximum number of cells that contain no particle" (Sec. 4.2);
//! - trajectory points in `(n, C₀/C)` space (Fig. 9).

use pcdlb_mp::WireSize;

/// Per-PE cell statistics for one time step (3-D cell counts, i.e.
/// columns × `nc` cells per column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeCellStats {
    /// The PE's rank.
    pub rank: usize,
    /// Cells currently owned (the PE's domain size).
    pub cells: usize,
    /// Owned cells containing no particles.
    pub empty_cells: usize,
    /// Particles currently owned.
    pub particles: usize,
}

impl WireSize for PeCellStats {
    fn wire_size(&self) -> usize {
        4 * 8
    }
}

/// One point of the `(n, C₀/C)` trajectory (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcentrationPoint {
    /// Time step the point was measured at.
    pub step: u64,
    /// Concentration factor estimate `n ≥ 1`.
    pub n: f64,
    /// Particle concentration ratio `C₀/C ∈ [0, 1]`.
    pub c0_over_c: f64,
}

/// Compute the concentration point for one step from all PEs' stats.
///
/// `total_cells` is the paper's `C`. The estimator mirrors Sec. 4.2: the
/// per-domain empty fraction `C₀'/C'` is averaged over the PE owning the
/// most cells and the PE owning the most empty cells (ties broken toward
/// the lower rank, deterministically), then divided by the global `C₀/C`.
/// The result is clamped to `n ≥ 1` (by definition the concentration
/// factor cannot be below uniform).
pub fn concentration_point(
    step: u64,
    stats: &[PeCellStats],
    total_cells: usize,
) -> ConcentrationPoint {
    assert!(!stats.is_empty(), "need at least one PE");
    assert!(total_cells > 0);
    let c0: usize = stats.iter().map(|s| s.empty_cells).sum();
    let cells_sum: usize = stats.iter().map(|s| s.cells).sum();
    debug_assert_eq!(cells_sum, total_cells, "per-PE cells must partition C");
    let c0_over_c = c0 as f64 / total_cells as f64;

    let max_cells_pe = stats
        .iter()
        .max_by(|a, b| a.cells.cmp(&b.cells).then(b.rank.cmp(&a.rank)))
        .expect("non-empty");
    let max_empty_pe = stats
        .iter()
        .max_by(|a, b| a.empty_cells.cmp(&b.empty_cells).then(b.rank.cmp(&a.rank)))
        .expect("non-empty");

    let frac = |s: &PeCellStats| {
        if s.cells == 0 {
            0.0
        } else {
            s.empty_cells as f64 / s.cells as f64
        }
    };
    let avg_frac = 0.5 * (frac(max_cells_pe) + frac(max_empty_pe));
    let n = if c0_over_c > 0.0 {
        (avg_frac / c0_over_c).max(1.0)
    } else {
        1.0
    };
    ConcentrationPoint { step, n, c0_over_c }
}

/// Least-squares fit of a line `y = a + b·n` through boundary points —
/// the paper's "experimental boundary" through the per-density boundary
/// points in `(n, C₀/C)` space (Fig. 10).
pub fn least_squares_line(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate fit: all x values coincide");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(rank: usize, cells: usize, empty: usize, parts: usize) -> PeCellStats {
        PeCellStats {
            rank,
            cells,
            empty_cells: empty,
            particles: parts,
        }
    }

    #[test]
    fn uniform_distribution_has_n_equal_one() {
        // 4 PEs × 25 cells, every PE 40% empty → C₀/C = 0.4, n = 1.
        let stats: Vec<_> = (0..4).map(|r| st(r, 25, 10, 30)).collect();
        let p = concentration_point(7, &stats, 100);
        assert_eq!(p.step, 7);
        assert!((p.c0_over_c - 0.4).abs() < 1e-12);
        assert!((p.n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_case_matches_paper_fig8() {
        // Paper Fig. 8 numbers: C = 81, C₀ = 36, max domain C' = 21 with
        // C₀' = 16 → n = (16/21)/(36/81) ≈ 1.7.
        // Model: PE 0 is both the max-cells and max-empty PE.
        let mut stats = vec![st(0, 21, 16, 10)];
        // Remaining 60 cells, 20 empty, spread over 8 PEs.
        for r in 1..=8 {
            stats.push(st(
                r,
                60 / 8 + usize::from(r <= 60 % 8),
                20 / 8 + usize::from(r <= 20 % 8),
                10,
            ));
        }
        let total_cells: usize = stats.iter().map(|s| s.cells).sum();
        let c0: usize = stats.iter().map(|s| s.empty_cells).sum();
        assert_eq!(total_cells, 81);
        assert_eq!(c0, 36);
        let p = concentration_point(0, &stats, 81);
        let expect = (16.0 / 21.0) / (36.0 / 81.0);
        assert!((p.n - expect).abs() < 1e-12, "n = {}, expect {expect}", p.n);
        assert!((expect - 1.714).abs() < 0.01); // the paper's ≈1.7
    }

    #[test]
    fn estimator_averages_two_distinct_pes() {
        // PE 0 owns the most cells (low empty fraction); PE 1 owns the
        // most empty cells (high fraction). n uses their average.
        let stats = vec![st(0, 40, 4, 100), st(1, 30, 21, 5), st(2, 30, 5, 50)];
        let p = concentration_point(0, &stats, 100);
        let c0r = 30.0 / 100.0;
        let expect = (0.5 * (4.0 / 40.0 + 21.0 / 30.0)) / c0r;
        assert!((p.n - expect).abs() < 1e-12);
    }

    #[test]
    fn n_clamps_at_one_from_below() {
        // Max-cells PE emptier than average is impossible combinatorially
        // here, but the estimator must still never report n < 1.
        let stats = vec![st(0, 50, 1, 100), st(1, 50, 48, 2)];
        let p = concentration_point(0, &stats, 100);
        assert!(p.n >= 1.0);
    }

    #[test]
    fn zero_empty_cells_defines_n_one() {
        let stats = vec![st(0, 50, 0, 10), st(1, 50, 0, 10)];
        let p = concentration_point(0, &stats, 100);
        assert_eq!(p.n, 1.0);
        assert_eq!(p.c0_over_c, 0.0);
    }

    #[test]
    fn tie_break_is_deterministic_toward_low_rank() {
        let a = vec![st(0, 50, 10, 10), st(1, 50, 10, 10)];
        let b = vec![st(1, 50, 10, 10), st(0, 50, 10, 10)];
        let pa = concentration_point(0, &a, 100);
        let pb = concentration_point(0, &b, 100);
        assert_eq!(pa, pb);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = 1.0 + i as f64 * 0.3;
                (x, 0.2 - 0.05 * x)
            })
            .collect();
        let (a, b) = least_squares_line(&pts);
        assert!((a - 0.2).abs() < 1e-12);
        assert!((b + 0.05).abs() < 1e-12);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let pts = vec![(1.0, 0.30), (1.5, 0.22), (2.0, 0.18), (3.0, 0.10)];
        let (a, b) = least_squares_line(&pts);
        let res =
            |a: f64, b: f64| -> f64 { pts.iter().map(|(x, y)| (y - a - b * x).powi(2)).sum() };
        let base = res(a, b);
        for da in [-0.01, 0.01] {
            for db in [-0.01, 0.01] {
                assert!(res(a + da, b + db) >= base);
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn vertical_line_rejected() {
        let _ = least_squares_line(&[(1.0, 0.1), (1.0, 0.2)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_stats() -> impl Strategy<Value = Vec<PeCellStats>> {
        proptest::collection::vec((1usize..200, 0usize..200, 0usize..500), 1..20).prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(rank, (cells, empty, parts))| PeCellStats {
                    rank,
                    cells,
                    empty_cells: empty.min(cells),
                    particles: parts,
                })
                .collect()
        })
    }

    proptest! {
        /// The estimator always produces n ≥ 1 and C₀/C ∈ [0, 1].
        #[test]
        fn prop_concentration_point_is_well_formed(stats in arb_stats()) {
            let total: usize = stats.iter().map(|s| s.cells).sum();
            let p = concentration_point(3, &stats, total);
            prop_assert!(p.n >= 1.0);
            prop_assert!((0.0..=1.0).contains(&p.c0_over_c));
        }

        /// Permuting the PE list never changes the estimate (rank ids are
        /// carried inside the stats).
        #[test]
        fn prop_estimator_is_order_independent(stats in arb_stats()) {
            let total: usize = stats.iter().map(|s| s.cells).sum();
            let a = concentration_point(0, &stats, total);
            let mut rev = stats.clone();
            rev.reverse();
            let b = concentration_point(0, &rev, total);
            prop_assert_eq!(a, b);
        }

        /// The least-squares line goes through the data's centroid.
        #[test]
        fn prop_ls_line_passes_centroid(
            pts in proptest::collection::vec((1.0f64..5.0, -1.0f64..1.0), 2..20)
        ) {
            // Skip near-degenerate x spreads.
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
                - xs.iter().cloned().fold(f64::MAX, f64::min);
            prop_assume!(spread > 1e-3);
            let (a, b) = least_squares_line(&pts);
            let n = pts.len() as f64;
            let cx = pts.iter().map(|p| p.0).sum::<f64>() / n;
            let cy = pts.iter().map(|p| p.1).sum::<f64>() / n;
            prop_assert!((cy - (a + b * cx)).abs() < 1e-9);
        }
    }
}

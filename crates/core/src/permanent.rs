//! Permanent / movable classification of a tile's columns (paper Fig. 3).
//!
//! Within each `m × m` tile, the last row (`ox = m−1`) and last column
//! (`oy = m−1`) — the side facing the `(i+1, ·)` and `(·, j+1)` neighbours
//! — are **permanent**: they are never redistributed and form the wall
//! that keeps a PE's domain from touching any domain outside its
//! 8-neighbourhood. The remaining `(m−1)²` block toward the NW corner is
//! **movable**: it may be lent to the NW-side neighbours (paper Case 1)
//! and later returned (Case 3).
//!
//! The orientation (which row/column is permanent) is forced by the
//! paper's transfer directions: Fig. 4 shows `PE(i, j)` receiving cells
//! from its `(i, j+1)`, `(i+1, j)` and `(i+1, j+1)` neighbours, so the
//! cells that move are those nearest the `(i−1, j−1)` corner.

use pcdlb_domain::{Col, PillarLayout};

/// True if `col` is a permanent cell of its home tile.
pub fn is_permanent(layout: &PillarLayout, col: Col) -> bool {
    let (ox, oy) = layout.offset_in_tile(col);
    let m = layout.m();
    ox == m - 1 || oy == m - 1
}

/// True if `col` is a movable cell of its home tile.
pub fn is_movable(layout: &PillarLayout, col: Col) -> bool {
    !is_permanent(layout, col)
}

/// Number of permanent columns per tile: `2m − 1`.
pub fn permanent_count(m: usize) -> usize {
    assert!(m >= 1);
    2 * m - 1
}

/// Number of movable columns per tile: `(m − 1)²`.
pub fn movable_count(m: usize) -> usize {
    assert!(m >= 1);
    (m - 1) * (m - 1)
}

/// The movable columns of `rank`'s home tile, in row-major order.
pub fn movable_columns(layout: &PillarLayout, rank: usize) -> Vec<Col> {
    layout
        .tile_columns(rank)
        .filter(|&c| is_movable(layout, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(p: usize, m: usize) -> PillarLayout {
        PillarLayout::from_p_and_m(p, m)
    }

    #[test]
    fn counts_partition_the_tile() {
        for m in 1..=6 {
            assert_eq!(permanent_count(m) + movable_count(m), m * m);
        }
        assert_eq!(permanent_count(3), 5); // paper Fig. 3: a row + a column
        assert_eq!(movable_count(3), 4);
        assert_eq!(movable_count(1), 0); // m = 1: everything permanent
    }

    #[test]
    fn classification_matches_counts() {
        for m in [1, 2, 3, 4] {
            let l = layout(9, m);
            for r in 0..9 {
                let perm = l.tile_columns(r).filter(|&c| is_permanent(&l, c)).count();
                let mov = l.tile_columns(r).filter(|&c| is_movable(&l, c)).count();
                assert_eq!(perm, permanent_count(m));
                assert_eq!(mov, movable_count(m));
            }
        }
    }

    #[test]
    fn paper_m2_case_one_quarter_movable() {
        // Paper Sec. 3.3: "In the m = 2 case, 1/4 of a domain is movable."
        assert_eq!(movable_count(2), 1);
        assert_eq!(movable_count(2) as f64 / 4.0_f64, 0.25);
    }

    #[test]
    fn paper_m4_case_nine_sixteenths_movable() {
        // Paper Sec. 3.3: "in the m = 4 case, 9/16 of a domain is movable."
        assert_eq!(movable_count(4), 9);
        assert_eq!(movable_count(4) as f64 / 16.0, 9.0 / 16.0);
    }

    #[test]
    fn permanent_cells_are_the_se_row_and_column() {
        let l = layout(9, 3);
        let o = l.tile_origin(4);
        // SE corner of the tile is permanent.
        assert!(is_permanent(&l, Col::new(o.cx + 2, o.cy + 2)));
        // Whole last row and last column.
        for k in 0..3 {
            assert!(is_permanent(&l, Col::new(o.cx + 2, o.cy + k)));
            assert!(is_permanent(&l, Col::new(o.cx + k, o.cy + 2)));
        }
        // NW block is movable.
        for dx in 0..2 {
            for dy in 0..2 {
                assert!(is_movable(&l, Col::new(o.cx + dx, o.cy + dy)));
            }
        }
    }

    #[test]
    fn movable_columns_listed_in_row_major_order() {
        let l = layout(9, 3);
        let o = l.tile_origin(0);
        assert_eq!(
            movable_columns(&l, 0),
            vec![
                Col::new(o.cx, o.cy),
                Col::new(o.cx, o.cy + 1),
                Col::new(o.cx + 1, o.cy),
                Col::new(o.cx + 1, o.cy + 1),
            ]
        );
    }

    #[test]
    fn permanent_walls_separate_movable_blocks_of_diagonal_tiles() {
        // The structural heart of the scheme: movable blocks of two
        // adjacent tiles are never 8-adjacent to each other — a permanent
        // row or column always lies between them.
        let l = layout(16, 3);
        let g = l.grid();
        for c in g.iter() {
            if !is_movable(&l, c) {
                continue;
            }
            for n in g.neighbors8(c) {
                if l.home_rank(n) != l.home_rank(c) {
                    assert!(
                        is_permanent(&l, n),
                        "movable {c:?} touches foreign movable {n:?}"
                    );
                }
            }
        }
    }
}

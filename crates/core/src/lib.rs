//! `pcdlb-core` — the paper's contribution: dynamic load balancing based
//! on permanent cells.
//!
//! The square-pillar domain decomposition (in `pcdlb-domain`) gives each
//! PE an `m × m` tile of cell columns and a regular 8-neighbour
//! communication pattern. DLB equalises load by transferring ownership of
//! columns to faster PEs — but arbitrary transfers would break the
//! 8-neighbour pattern. The paper's idea (Sec. 2.3): classify each tile's
//! columns into
//!
//! - **permanent cells** — the row and column of the tile on its S/E side
//!   (`2m − 1` columns). They never move, forming a wall that keeps
//!   non-neighbouring domains from ever becoming adjacent;
//! - **movable cells** — the `(m−1)²` block toward the NW corner, which
//!   may be lent to the N / W / NW neighbour and later returned.
//!
//! Modules:
//! - [`permanent`] — the classification;
//! - [`protocol`] — the per-step redistribution rules (paper's
//!   Cases 1–3): who sends which column to whom;
//! - [`theory`] — the theoretical upper bound `f(m, n)` on the particle
//!   concentration ratio `C₀/C` (paper Sec. 4.1, Eqs. 2–12);
//! - [`metrics`] — concentration measurements: `C₀/C`, the maximum-domain
//!   quantities and the paper's two-PE estimator of the concentration
//!   factor `n`;
//! - [`boundary`] — the experimental-boundary detector (the step at which
//!   `Fmax − Fmin` begins a sustained increase, Sec. 4.2).

pub mod boundary;
pub mod metrics;
pub mod permanent;
pub mod protocol;
pub mod theory;

pub use boundary::BoundaryDetector;
pub use metrics::{ConcentrationPoint, PeCellStats};
pub use permanent::{is_movable, is_permanent, movable_count, permanent_count};
pub use protocol::{DlbDecision, DlbProtocol, ProtocolError};

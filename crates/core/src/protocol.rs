//! The cell-redistribution protocol (paper Sec. 2.3).
//!
//! Every time step each PE: (1) exchanges its last-step execution time
//! with its 8 neighbours, (2) identifies the fastest PE among itself and
//! the 8, (3) decides which cell — if any — to send to that PE, and (4)
//! broadcasts the decision to its neighbours so everyone's ownership view
//! stays consistent. The decision rule, with `PE(i, j)` deciding and
//! `PE_fast` the fastest (paper's exact cases):
//!
//! - **Case 1** — `PE_fast ∈ {NW, N, W}` = `(i−1,j−1), (i−1,j), (i,j−1)`:
//!   send one of its *own movable* cells it still owns, else nothing.
//! - **Case 2** — `PE_fast ∈ {NE, SW}` = `(i−1,j+1), (i+1,j−1)`: there is
//!   no cell that may move this way; send nothing.
//! - **Case 3** — `PE_fast ∈ {E, S, SE}` = `(i,j+1), (i+1,j), (i+1,j+1)`:
//!   if it currently holds cells whose *home* is `PE_fast` (previously
//!   received from there), return one; else nothing.
//!
//! Cells therefore only ever sit at their home PE or one step in the
//! NW / N / W direction from it — the invariant that, together with the
//! permanent-cell wall, preserves the 8-neighbour communication pattern
//! (property-tested below against arbitrary protocol executions).
//!
//! Determinism notes (the paper ran on wall clocks, we also run on an
//! exact work model where ties are real): the "fastest" choice prefers
//! the deciding PE itself on ties and then the lowest rank, so a
//! perfectly balanced system performs no transfers.

use std::fmt;

use pcdlb_domain::{Col, OwnershipMap, PillarLayout};
use pcdlb_mp::WireSize;

use crate::permanent::is_movable;

/// Message tags of the square-pillar SPMD step, in one place so the
/// simulator (`pcdlb-sim`) and the static protocol verifier
/// (`pcdlb-check`) agree on the wire protocol by construction.
///
/// Tags 1–5 are matched point-to-point; 10–13 are *collective* tags,
/// which `pcdlb_mp::collectives` moves into a disjoint namespace by
/// setting [`pcdlb_mp::collectives::COLLECTIVE_BIT`] on the wire, so a
/// collective tag can never collide with a point-to-point tag even if
/// the numbers overlap.
pub mod tags {
    /// Phase 2 (DLB step 4): chosen `Option<DlbDecision>` to the 8-neighbourhood.
    pub const DECISION: u64 = 2;
    /// Phase 2 (DLB data movement): particle payload of a transferred column.
    pub const CELL_XFER: u64 = 3;
    /// The coalesced per-neighbour step message: each step a rank sends
    /// exactly two framed messages to each of its 8 neighbours under this
    /// one tag — round 1 carries boundary-crossing migrants plus (on DLB
    /// steps) the sender's last-step load, round 2 carries the
    /// delta-encodable boundary-shell ghost frame. Sub-frame presence
    /// headers inside the frame distinguish the rounds; per-(src,dst,tag)
    /// FIFO ordering keeps the two rounds matched.
    pub const STEP_FRAME: u64 = 16;
    /// Phase 5 (collective): kinetic-energy gather to rank 0.
    pub const KE_GATHER: u64 = 10;
    /// Phase 5 (collective): thermostat scale factor broadcast from rank 0.
    pub const KE_BCAST: u64 = 11;
    /// Phase 6 (collective): per-step stats gather to rank 0.
    pub const STATS: u64 = 12;
    /// End of run (collective): final particle snapshot gather to rank 0.
    pub const SNAPSHOT: u64 = 13;
    /// Periodic (collective): distributed checkpoint gather to rank 0 —
    /// every owned column's particles plus the ownership view, so rank 0
    /// can assemble a restartable [`pcdlb-sim`] checkpoint.
    pub const CKPT_GATHER: u64 = 14;
    /// Periodic (collective): runtime invariant sentinel gather to rank 0
    /// — per-rank particle counts and owned columns, checked for global
    /// conservation and exact ownership partition.
    pub const SENTINEL: u64 = 15;
    /// Takeover barrier (p2p): survivor READY announcement to the barrier
    /// root after adopting/epoch-advancing.
    pub const TAKEOVER_READY: u64 = 6;
    /// Takeover barrier (p2p): root GO release once every survivor is
    /// ready.
    pub const TAKEOVER_GO: u64 = 7;
    /// Completion handshake (p2p, takeover worlds): per-virtual-rank DONE
    /// notification to virtual rank 0 at end of run.
    pub const TAKEOVER_DONE: u64 = 8;
    /// Completion handshake (p2p, takeover worlds): rank 0's ACK releasing
    /// a DONE sender to exit.
    pub const TAKEOVER_ACK: u64 = 9;
    /// Resize barrier (p2p, elastic worlds): READY announcement to the
    /// barrier root after a relaunched generation comes up on the remapped
    /// torus.
    pub const RESIZE_READY: u64 = 17;
    /// Resize barrier (p2p, elastic worlds): root GO release once every
    /// rank of the new generation has reported READY.
    pub const RESIZE_GO: u64 = 18;
    /// Skin epochs (collective): per-rank max predicted squared travel
    /// gathered to rank 0 at the top of each step (skin > 0 runs only).
    pub const REBUILD_GATHER: u64 = 19;
    /// Skin epochs (collective): rank 0's global max broadcast back, from
    /// which every rank derives the identical rebuild-now decision.
    pub const REBUILD_BCAST: u64 = 20;

    /// The communication phases of one simulated step, in program order.
    /// Every blocking receive in `pcdlb-sim`'s pillar step belongs to
    /// exactly one phase; phases are separated by the program structure
    /// (no message sent in one phase is received in another).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum CommPhase {
        /// Skin-epoch rebuild decision (collective): gather each rank's
        /// max predicted travel, broadcast the global max. Only present
        /// when `skin > 0`; runs before any particle state mutates so the
        /// decision is a pure function of the pre-step state.
        Rebuild,
        /// Round-1 coalesced exchange (8-neighbourhood): boundary-crossing
        /// particle migration, with last-step loads riding along on DLB
        /// steps (the former standalone load exchange).
        Migrate,
        /// DLB decision broadcast (8-neighbourhood).
        DlbDecision,
        /// DLB column payload movement (decision-driven).
        DlbCellXfer,
        /// Ghost-layer exchange (8-neighbourhood).
        Ghost,
        /// Thermostat gather + broadcast (collectives).
        Thermostat,
        /// Stats gather (collective).
        Stats,
        /// Final snapshot gather (collective).
        Snapshot,
        /// Periodic distributed checkpoint gather (collective).
        Checkpoint,
        /// Periodic invariant-sentinel gather (collective). Not part of
        /// the baseline step schedule: present only when the sentinel is
        /// enabled, and always downstream of `Checkpoint`.
        Sentinel,
        /// Takeover barrier + completion handshake (p2p, takeover worlds
        /// only). Never appears in the per-step schedule; its receives are
        /// deadline-bounded rather than schedule-matched.
        Takeover,
        /// Elastic resize barrier (p2p, elastic worlds only): runs once at
        /// the start of each relaunched generation, before the first step
        /// on the remapped torus. Like `Takeover`, never part of the
        /// per-step schedule; its receives are deadline-bounded.
        Resize,
    }

    /// One row of [`TAG_TABLE`]: a tag, its name, the phase that uses it,
    /// and whether it travels through the collective namespace.
    #[derive(Debug, Clone, Copy)]
    pub struct TagSpec {
        /// The wire tag value (pre-namespacing for collectives).
        pub tag: u64,
        /// Human-readable name for verifier reports.
        pub name: &'static str,
        /// The step phase this tag belongs to.
        pub phase: CommPhase,
        /// True when the tag is used through `pcdlb_mp::collectives`.
        pub collective: bool,
    }

    /// Every tag of the pillar-simulator protocol. The static verifier
    /// checks this table for uniqueness per namespace and builds the
    /// per-phase message-flow graph from it.
    pub const TAG_TABLE: &[TagSpec] = &[
        // STEP_FRAME is the one per-neighbour point-to-point tag of the
        // steady-state step: round 1 in the Migrate phase, round 2 in the
        // Ghost phase. The table records the first phase that uses it;
        // FIFO per (src, dst, tag) keeps the rounds unambiguous.
        TagSpec {
            tag: STEP_FRAME,
            name: "STEP_FRAME",
            phase: CommPhase::Migrate,
            collective: false,
        },
        TagSpec {
            tag: DECISION,
            name: "DECISION",
            phase: CommPhase::DlbDecision,
            collective: false,
        },
        TagSpec {
            tag: CELL_XFER,
            name: "CELL_XFER",
            phase: CommPhase::DlbCellXfer,
            collective: false,
        },
        TagSpec {
            tag: KE_GATHER,
            name: "KE_GATHER",
            phase: CommPhase::Thermostat,
            collective: true,
        },
        TagSpec {
            tag: KE_BCAST,
            name: "KE_BCAST",
            phase: CommPhase::Thermostat,
            collective: true,
        },
        TagSpec {
            tag: STATS,
            name: "STATS",
            phase: CommPhase::Stats,
            collective: true,
        },
        TagSpec {
            tag: SNAPSHOT,
            name: "SNAPSHOT",
            phase: CommPhase::Snapshot,
            collective: true,
        },
        TagSpec {
            tag: CKPT_GATHER,
            name: "CKPT_GATHER",
            phase: CommPhase::Checkpoint,
            collective: true,
        },
        TagSpec {
            tag: SENTINEL,
            name: "SENTINEL",
            phase: CommPhase::Sentinel,
            collective: true,
        },
        TagSpec {
            tag: TAKEOVER_READY,
            name: "TAKEOVER_READY",
            phase: CommPhase::Takeover,
            collective: false,
        },
        TagSpec {
            tag: TAKEOVER_GO,
            name: "TAKEOVER_GO",
            phase: CommPhase::Takeover,
            collective: false,
        },
        TagSpec {
            tag: TAKEOVER_DONE,
            name: "TAKEOVER_DONE",
            phase: CommPhase::Takeover,
            collective: false,
        },
        TagSpec {
            tag: TAKEOVER_ACK,
            name: "TAKEOVER_ACK",
            phase: CommPhase::Takeover,
            collective: false,
        },
        TagSpec {
            tag: RESIZE_READY,
            name: "RESIZE_READY",
            phase: CommPhase::Resize,
            collective: false,
        },
        TagSpec {
            tag: RESIZE_GO,
            name: "RESIZE_GO",
            phase: CommPhase::Resize,
            collective: false,
        },
        TagSpec {
            tag: REBUILD_GATHER,
            name: "REBUILD_GATHER",
            phase: CommPhase::Rebuild,
            collective: true,
        },
        TagSpec {
            tag: REBUILD_BCAST,
            name: "REBUILD_BCAST",
            phase: CommPhase::Rebuild,
            collective: true,
        },
    ];
}

/// Why a [`DlbDecision`] is illegal against an ownership view. Produced
/// by [`DlbProtocol::validate`]; each variant carries the offending
/// decision plus the fact that contradicts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The sender does not currently own the column.
    NotOwner {
        /// The offending decision.
        decision: DlbDecision,
        /// Who actually owns the column.
        actual_owner: usize,
    },
    /// The column is a permanent cell and may never move.
    PermanentCell {
        /// The offending decision.
        decision: DlbDecision,
    },
    /// Case 1 send of a column whose home is not the sender (forwarding a
    /// borrowed cell instead of returning it).
    ForeignForward {
        /// The offending decision.
        decision: DlbDecision,
        /// The column's home rank.
        home: usize,
    },
    /// Case 3 return addressed to a PE that is not the column's home.
    WrongReturn {
        /// The offending decision.
        decision: DlbDecision,
        /// The column's home rank.
        home: usize,
    },
    /// The transfer direction is not one of the six legal tile deltas.
    IllegalDirection {
        /// The offending decision.
        decision: DlbDecision,
        /// The (folded) tile delta from sender to receiver.
        delta: (i64, i64),
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotOwner {
                decision,
                actual_owner,
            } => write!(
                f,
                "{decision:?}: sender {} does not own the column (owner {actual_owner})",
                decision.from
            ),
            Self::PermanentCell { decision } => {
                write!(f, "{decision:?}: column is permanent")
            }
            Self::ForeignForward { decision, home } => write!(
                f,
                "{decision:?}: Case 1 send of a column whose home is {home}, not the sender"
            ),
            Self::WrongReturn { decision, home } => write!(
                f,
                "{decision:?}: Case 3 return to {}, but the column's home is {home}",
                decision.to
            ),
            Self::IllegalDirection { decision, delta } => {
                write!(f, "{decision:?}: illegal transfer direction {delta:?}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One ownership transfer: `from` hands `col` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlbDecision {
    /// The column changing hands.
    pub col: Col,
    /// Current owner (the deciding PE).
    pub from: usize,
    /// Receiving PE (the fastest in `from`'s neighbourhood).
    pub to: usize,
}

impl WireSize for DlbDecision {
    fn wire_size(&self) -> usize {
        16 + 8 + 8
    }
}

/// The per-PE decision logic. Stateless apart from the layout — all
/// dynamic state lives in the [`OwnershipMap`] each PE maintains.
#[derive(Debug, Clone, Copy)]
pub struct DlbProtocol {
    layout: PillarLayout,
    rank: usize,
    /// Minimum relative load advantage of the fastest PE for a transfer to
    /// fire: `(own − fastest)/own > min_relative_gain`. The paper uses 0
    /// (any measured difference triggers); a small hysteresis can be
    /// configured to suppress noise-driven churn on wall-clock loads.
    min_relative_gain: f64,
}

impl DlbProtocol {
    /// Protocol instance for `rank` over `layout`. Requires a torus side
    /// of at least 3 so the 8 directional neighbour roles are distinct.
    pub fn new(layout: PillarLayout, rank: usize) -> Self {
        assert!(
            layout.torus().rows() >= 3,
            "DLB needs a torus side of at least 3 (paper uses ≥ 4); got {}",
            layout.torus().rows()
        );
        assert!(rank < layout.num_ranks());
        Self {
            layout,
            rank,
            min_relative_gain: 0.0,
        }
    }

    /// Set the hysteresis threshold (see field docs).
    pub fn with_min_relative_gain(mut self, g: f64) -> Self {
        assert!(g >= 0.0);
        self.min_relative_gain = g;
        self
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The layout.
    pub fn layout(&self) -> &PillarLayout {
        &self.layout
    }

    /// Find the fastest PE among this PE and its neighbours (paper step
    /// 2). `neighbor_loads` carries `(rank, last-step load)` for the
    /// distinct 8-neighbours. Self wins ties; among neighbours the lowest
    /// rank wins ties — fully deterministic.
    pub fn fastest_pe(&self, own_load: f64, neighbor_loads: &[(usize, f64)]) -> usize {
        let mut best_rank = self.rank;
        let mut best_load = own_load;
        for &(r, l) in neighbor_loads {
            debug_assert_ne!(r, self.rank, "neighbour list must not contain self");
            if l < best_load || (l == best_load && best_rank != self.rank && r < best_rank) {
                best_rank = r;
                best_load = l;
            }
        }
        if best_rank == self.rank {
            return self.rank;
        }
        // Hysteresis: with a non-zero threshold, require the fastest PE's
        // relative advantage to exceed it; otherwise keep the load here.
        if self.min_relative_gain > 0.0
            && (own_load <= 0.0 || (own_load - best_load) / own_load <= self.min_relative_gain)
        {
            return self.rank;
        }
        best_rank
    }

    /// Decide what to send to `fastest` (paper step 3, Cases 1–3), given
    /// this PE's current ownership view. Returns `None` when nothing may
    /// move (including when this PE is itself the fastest).
    pub fn decide(&self, ownership: &OwnershipMap, fastest: usize) -> Option<DlbDecision> {
        if fastest == self.rank {
            return None;
        }
        let delta = self.layout.tile_delta(self.rank, fastest);
        match delta {
            // Case 1: NW-direction neighbours receive our own movable cells.
            (-1, -1) | (-1, 0) | (0, -1) => self.pick_own_movable(ownership, fastest),
            // Case 2: the anti-diagonal directions can never receive.
            (-1, 1) | (1, -1) => None,
            // Case 3: SE-direction neighbours get their own cells back.
            (0, 1) | (1, 0) | (1, 1) => self.pick_return(ownership, fastest),
            other => panic!(
                "rank {} asked to send toward non-neighbour {fastest} (tile delta {other:?})",
                self.rank
            ),
        }
    }

    /// Case 1 candidate: one of this PE's own movable columns it still
    /// owns, geometrically closest to the receiver's tile (ties: lowest
    /// `(cx, cy)`), so domains stay compact as in the paper's Fig. 4.
    fn pick_own_movable(&self, ownership: &OwnershipMap, to: usize) -> Option<DlbDecision> {
        let l = &self.layout;
        let target_origin = l.tile_origin(to);
        let m = l.m();
        let grid = l.grid();
        l.tile_columns(self.rank)
            .filter(|&c| is_movable(l, c) && ownership.owner_of(c) == self.rank)
            .min_by_key(|&c| {
                // Distance from the column to the nearest column of the
                // receiving tile (periodic Chebyshev).
                let d = (0..m)
                    .flat_map(|dx| (0..m).map(move |dy| (dx, dy)))
                    .map(|(dx, dy)| {
                        grid.chebyshev(c, Col::new(target_origin.cx + dx, target_origin.cy + dy))
                    })
                    .min()
                    .expect("tile has columns");
                (d, c.cx, c.cy)
            })
            .map(|col| DlbDecision {
                col,
                from: self.rank,
                to,
            })
    }

    /// Case 3 candidate: a column this PE holds whose home is `to`
    /// (lowest `(cx, cy)` for determinism; the paper says only "returns
    /// one of these cells").
    fn pick_return(&self, ownership: &OwnershipMap, to: usize) -> Option<DlbDecision> {
        let l = &self.layout;
        ownership
            .owned_columns(self.rank)
            .into_iter()
            .find(|&c| l.home_rank(c) == to)
            .map(|col| DlbDecision {
                col,
                from: self.rank,
                to,
            })
    }

    /// Validate a decision against an ownership view: correct owner, a
    /// legal direction, movable cell, and (for Case 1) cell is the
    /// sender's own. Used by the simulator in debug builds, the property
    /// tests, and the `pcdlb-check` permanent-cell invariant search.
    pub fn validate(
        layout: &PillarLayout,
        ownership: &OwnershipMap,
        d: &DlbDecision,
    ) -> Result<(), ProtocolError> {
        if ownership.owner_of(d.col) != d.from {
            return Err(ProtocolError::NotOwner {
                decision: *d,
                actual_owner: ownership.owner_of(d.col),
            });
        }
        if !is_movable(layout, d.col) {
            return Err(ProtocolError::PermanentCell { decision: *d });
        }
        let home = layout.home_rank(d.col);
        let delta = layout.tile_delta(d.from, d.to);
        match delta {
            (-1, -1) | (-1, 0) | (0, -1) => {
                if home != d.from {
                    return Err(ProtocolError::ForeignForward { decision: *d, home });
                }
            }
            (0, 1) | (1, 0) | (1, 1) => {
                if home != d.to {
                    return Err(ProtocolError::WrongReturn { decision: *d, home });
                }
            }
            other => {
                return Err(ProtocolError::IllegalDirection {
                    decision: *d,
                    delta: other,
                })
            }
        }
        Ok(())
    }

    /// Apply a (validated) decision to an ownership view.
    pub fn apply(ownership: &mut OwnershipMap, d: &DlbDecision) {
        ownership.transfer(d.col, d.from, d.to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup(p: usize, m: usize) -> (PillarLayout, OwnershipMap) {
        let l = PillarLayout::from_p_and_m(p, m);
        let om = OwnershipMap::initial(l);
        (l, om)
    }

    /// Rank at torus coordinates, for readable tests.
    fn at(l: &PillarLayout, i: i64, j: i64) -> usize {
        l.torus().rank_wrapped(i, j)
    }

    #[test]
    fn fastest_prefers_self_on_ties() {
        let (l, _) = setup(9, 3);
        let p = DlbProtocol::new(l, 4);
        let nbrs: Vec<(usize, f64)> = l
            .torus()
            .distinct_neighbors8(4)
            .into_iter()
            .map(|r| (r, 1.0))
            .collect();
        assert_eq!(
            p.fastest_pe(1.0, &nbrs),
            4,
            "all equal → no transfer target"
        );
    }

    #[test]
    fn fastest_picks_strictly_smaller_load() {
        let (l, _) = setup(9, 3);
        let p = DlbProtocol::new(l, 4);
        let mut nbrs: Vec<(usize, f64)> = l
            .torus()
            .distinct_neighbors8(4)
            .into_iter()
            .map(|r| (r, 1.0))
            .collect();
        nbrs[3].1 = 0.5;
        assert_eq!(p.fastest_pe(1.0, &nbrs), nbrs[3].0);
    }

    #[test]
    fn fastest_tie_between_neighbors_goes_to_lowest_rank() {
        let (l, _) = setup(9, 3);
        let p = DlbProtocol::new(l, 4);
        let nbrs: Vec<(usize, f64)> = l
            .torus()
            .distinct_neighbors8(4)
            .into_iter()
            .map(|r| (r, 0.5))
            .collect();
        let min_rank = *nbrs.iter().map(|(r, _)| r).min().unwrap();
        assert_eq!(p.fastest_pe(1.0, &nbrs), min_rank);
    }

    #[test]
    fn hysteresis_suppresses_small_gains() {
        let (l, _) = setup(9, 3);
        let p = DlbProtocol::new(l, 4).with_min_relative_gain(0.10);
        let nbrs = vec![(0usize, 0.95)];
        assert_eq!(p.fastest_pe(1.0, &nbrs), 4, "5% gain under 10% threshold");
        let nbrs = vec![(0usize, 0.85)];
        assert_eq!(p.fastest_pe(1.0, &nbrs), 0, "15% gain over threshold");
    }

    #[test]
    fn case1_sends_own_movable_toward_nw() {
        let (l, om) = setup(9, 3);
        let me = at(&l, 1, 1);
        let nw = at(&l, 0, 0);
        let p = DlbProtocol::new(l, me);
        let d = p.decide(&om, nw).expect("has movable cells");
        assert_eq!(d.from, me);
        assert_eq!(d.to, nw);
        // Closest movable cell to the NW tile is the tile's NW corner.
        assert_eq!(d.col, l.tile_origin(me));
        DlbProtocol::validate(&l, &om, &d).unwrap();
    }

    #[test]
    fn case1_exhausts_movable_cells() {
        let (l, mut om) = setup(9, 2); // m = 2 → one movable cell per tile
        let me = at(&l, 1, 1);
        let n = at(&l, 0, 1);
        let p = DlbProtocol::new(l, me);
        let d = p.decide(&om, n).expect("one movable cell");
        DlbProtocol::apply(&mut om, &d);
        assert!(p.decide(&om, n).is_none(), "movable cell already lent out");
    }

    #[test]
    fn case2_directions_send_nothing() {
        let (l, om) = setup(9, 4);
        let me = at(&l, 1, 1);
        let p = DlbProtocol::new(l, me);
        assert!(p.decide(&om, at(&l, 0, 2)).is_none(), "NE");
        assert!(p.decide(&om, at(&l, 2, 0)).is_none(), "SW");
    }

    #[test]
    fn case3_returns_only_held_foreign_cells() {
        let (l, mut om) = setup(9, 3);
        let me = at(&l, 1, 1);
        let south = at(&l, 2, 1);
        let p_me = DlbProtocol::new(l, me);
        // Initially nothing to return.
        assert!(p_me.decide(&om, south).is_none());
        // South lends us one of its movable cells (we are its N neighbour).
        let p_south = DlbProtocol::new(l, south);
        let lend = p_south.decide(&om, me).expect("south has movable cells");
        DlbProtocol::apply(&mut om, &lend);
        // Now we can return exactly that cell.
        let ret = p_me.decide(&om, south).expect("can return");
        assert_eq!(ret.col, lend.col);
        DlbProtocol::validate(&l, &om, &ret).unwrap();
        DlbProtocol::apply(&mut om, &ret);
        assert!(p_me.decide(&om, south).is_none(), "ledger empty again");
    }

    #[test]
    fn self_fastest_means_no_decision() {
        let (l, om) = setup(9, 3);
        let p = DlbProtocol::new(l, 4);
        assert!(p.decide(&om, 4).is_none());
    }

    #[test]
    fn validate_rejects_permanent_cell_transfer() {
        let (l, om) = setup(9, 3);
        let me = at(&l, 1, 1);
        let o = l.tile_origin(me);
        let d = DlbDecision {
            col: pcdlb_domain::Col::new(o.cx + 2, o.cy), // permanent row
            from: me,
            to: at(&l, 0, 0),
        };
        let err = DlbProtocol::validate(&l, &om, &d).unwrap_err();
        assert_eq!(err, ProtocolError::PermanentCell { decision: d });
        assert!(err.to_string().contains("permanent"));
    }

    #[test]
    fn validate_rejects_forwarding_foreign_cells() {
        // A cell received from the south may not be passed on to the NW.
        let (l, mut om) = setup(9, 3);
        let me = at(&l, 1, 1);
        let south = at(&l, 2, 1);
        let p_south = DlbProtocol::new(l, south);
        let lend = p_south.decide(&om, me).unwrap();
        DlbProtocol::apply(&mut om, &lend);
        let d = DlbDecision {
            col: lend.col,
            from: me,
            to: at(&l, 0, 0),
        };
        let err = DlbProtocol::validate(&l, &om, &d).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::ForeignForward {
                decision: d,
                home: south
            }
        );
        assert!(err.to_string().contains("Case 1"));
    }

    #[test]
    fn validate_rejects_non_owned_and_non_neighbour_transfers() {
        let (l, om) = setup(9, 3);
        let me = at(&l, 1, 1);
        let nw = at(&l, 0, 0);
        // A movable column of the NW tile, which `me` does not own.
        let foreign = DlbDecision {
            col: l.tile_origin(nw),
            from: me,
            to: nw,
        };
        assert!(matches!(
            DlbProtocol::validate(&l, &om, &foreign).unwrap_err(),
            ProtocolError::NotOwner { actual_owner, .. } if actual_owner == nw
        ));
        // A legal column aimed past the 8-neighbourhood (delta (-1, -1) is
        // legal; (2, 0) folded on a 3-torus is (-1, 0)... use a 4-torus).
        let l4 = PillarLayout::from_p_and_m(16, 3);
        let om4 = OwnershipMap::initial(l4);
        let me4 = l4.torus().rank_wrapped(1, 1);
        let far = l4.torus().rank_wrapped(3, 1); // delta (2, 0) → folded 2
        let d = DlbDecision {
            col: l4.tile_origin(me4),
            from: me4,
            to: far,
        };
        assert!(matches!(
            DlbProtocol::validate(&l4, &om4, &d).unwrap_err(),
            ProtocolError::IllegalDirection { delta: (2, 0), .. }
        ));
    }

    #[test]
    fn tag_table_is_unique_per_namespace() {
        use std::collections::BTreeSet;
        for collective in [false, true] {
            let vals: Vec<u64> = tags::TAG_TABLE
                .iter()
                .filter(|s| s.collective == collective)
                .map(|s| s.tag)
                .collect();
            let set: BTreeSet<u64> = vals.iter().copied().collect();
            assert_eq!(
                vals.len(),
                set.len(),
                "duplicate tag (collective={collective})"
            );
        }
    }

    #[test]
    fn max_accumulation_matches_dlb_limit() {
        // Fig. 4's extreme: a PE receives every movable cell of its S, E
        // and SE neighbours, ending at m² + 3(m−1)² columns.
        let m = 3;
        let (l, mut om) = setup(9, m);
        let me = at(&l, 1, 1);
        let donors = [at(&l, 2, 1), at(&l, 1, 2), at(&l, 2, 2)];
        loop {
            let mut any = false;
            for &d in &donors {
                let p = DlbProtocol::new(l, d);
                if let Some(dec) = p.decide(&om, me) {
                    DlbProtocol::validate(&l, &om, &dec).unwrap();
                    DlbProtocol::apply(&mut om, &dec);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        assert_eq!(om.num_owned(me), m * m + 3 * (m - 1) * (m - 1));
        om.check_all().unwrap();
    }

    #[test]
    #[should_panic(expected = "torus side of at least 3")]
    fn tiny_torus_rejected() {
        let l = PillarLayout::from_p_and_m(4, 2);
        let _ = DlbProtocol::new(l, 0);
    }

    /// The central safety theorem, property-tested: under ANY sequence of
    /// protocol-legal decisions driven by arbitrary load patterns, the
    /// ownership map keeps all structural invariants — tile distance,
    /// 8-neighbour preservation and ghost containment.
    fn arbitrary_protocol_run(p_side: usize, m: usize, loads_seed: u64, steps: usize) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let l = PillarLayout::from_p_and_m(p_side * p_side, m);
        let mut om = OwnershipMap::initial(l);
        let mut rng = StdRng::seed_from_u64(loads_seed);
        let nranks = l.num_ranks();
        for _ in 0..steps {
            let loads: Vec<f64> = (0..nranks).map(|_| rng.gen_range(0.0..1.0)).collect();
            // Every PE decides from the same global view (the simulator
            // keeps views consistent through neighbour broadcasts).
            let decisions: Vec<DlbDecision> = (0..nranks)
                .filter_map(|r| {
                    let proto = DlbProtocol::new(l, r);
                    let nbrs: Vec<(usize, f64)> = l
                        .torus()
                        .distinct_neighbors8(r)
                        .into_iter()
                        .map(|q| (q, loads[q]))
                        .collect();
                    let fast = proto.fastest_pe(loads[r], &nbrs);
                    proto.decide(&om, fast)
                })
                .collect();
            for d in &decisions {
                DlbProtocol::validate(&l, &om, d).unwrap();
                DlbProtocol::apply(&mut om, d);
            }
            om.check_all().unwrap();
            // Accumulation never exceeds the DLB limit.
            for r in 0..nranks {
                assert!(
                    om.num_owned(r) <= (m * m + 3 * (m - 1) * (m - 1)),
                    "rank {r} exceeded the DLB limit"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_invariants_hold_under_any_execution(
            p_side in 3usize..6,
            m in 1usize..5,
            seed in any::<u64>(),
        ) {
            arbitrary_protocol_run(p_side, m, seed, 30);
        }
    }

    #[test]
    fn long_execution_on_paper_configuration() {
        // P = 36, m = 4 (the paper's Fig. 5(a) layout), 200 steps of
        // random load churn.
        arbitrary_protocol_run(6, 4, 20260705, 200);
    }
}

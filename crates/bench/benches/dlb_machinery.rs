//! Microbenchmarks of the DLB machinery itself — the per-step overhead
//! the paper argues is "small" enough to run every time step: the
//! fastest-PE scan, the Case 1–3 decision, and ownership bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion};
use pcdlb_core::protocol::DlbProtocol;
use pcdlb_domain::{OwnershipMap, PillarLayout};

fn bench_decision(c: &mut Criterion) {
    let layout = PillarLayout::from_p_and_m(36, 4); // paper Fig. 5(a)
    let om = OwnershipMap::initial(layout);
    let proto = DlbProtocol::new(layout, 14);
    let nbrs: Vec<(usize, f64)> = layout
        .torus()
        .distinct_neighbors8(14)
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, 1.0 + i as f64 * 0.01))
        .collect();

    c.bench_function("dlb_fastest_pe_scan", |b| {
        b.iter(|| proto.fastest_pe(std::hint::black_box(1.05), &nbrs))
    });
    c.bench_function("dlb_decide_case1", |b| {
        let fastest = nbrs[0].0;
        b.iter(|| proto.decide(&om, std::hint::black_box(fastest)))
    });
}

fn bench_ownership(c: &mut Criterion) {
    let layout = PillarLayout::from_p_and_m(36, 4);
    c.bench_function("ownership_initial_map", |b| {
        b.iter(|| OwnershipMap::initial(std::hint::black_box(layout)))
    });
    let om = OwnershipMap::initial(layout);
    c.bench_function("ownership_owned_columns", |b| {
        b.iter(|| om.owned_columns(std::hint::black_box(14)).len())
    });
    c.bench_function("ownership_ghost_sources", |b| {
        b.iter(|| om.ghost_sources(std::hint::black_box(14)).len())
    });
    c.bench_function("ownership_check_all", |b| b.iter(|| om.check_all().is_ok()));
}

fn bench_transfer_roundtrip(c: &mut Criterion) {
    let layout = PillarLayout::from_p_and_m(36, 4);
    c.bench_function("dlb_lend_and_return_cycle", |b| {
        let mut om = OwnershipMap::initial(layout);
        let donor = layout.torus().rank_wrapped(2, 2);
        let recv = layout.torus().rank_wrapped(1, 1);
        let p_donor = DlbProtocol::new(layout, donor);
        let p_back = DlbProtocol::new(layout, recv);
        b.iter(|| {
            let lend = p_donor.decide(&om, recv).expect("movable available");
            DlbProtocol::apply(&mut om, &lend);
            let ret = p_back.decide(&om, donor).expect("can return");
            DlbProtocol::apply(&mut om, &ret);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_decision, bench_ownership, bench_transfer_roundtrip
}
criterion_main!(benches);

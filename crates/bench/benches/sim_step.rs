//! Whole-simulation benchmarks: cost of a full parallel time step under
//! DDM vs DLB-DDM (the paper's claim that DLB overhead is small enough to
//! run every step), and the serial reference for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use pcdlb_sim::{run, serial_sim, RunConfig};

fn small(dlb: bool) -> RunConfig {
    let mut cfg = RunConfig::from_p_m_density(9, 2, 0.256);
    cfg.steps = 25;
    cfg.dlb = dlb;
    cfg.dlb_min_gain = 0.05;
    cfg
}

fn bench_parallel_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_25_steps_p9_m2");
    g.bench_function("ddm", |b| {
        let cfg = small(false);
        b.iter(|| run(&cfg))
    });
    g.bench_function("dlb_ddm", |b| {
        let cfg = small(true);
        b.iter(|| run(&cfg))
    });
    g.finish();
}

fn bench_serial_steps(c: &mut Criterion) {
    c.bench_function("serial_25_steps_same_system", |b| {
        let cfg = small(false);
        b.iter(|| {
            let mut sim = serial_sim(&cfg);
            for _ in 0..cfg.steps {
                sim.step();
            }
            sim.steps_done()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_steps, bench_serial_steps
}
criterion_main!(benches);

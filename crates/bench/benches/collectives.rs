//! Message-passing substrate benchmarks: point-to-point latency through
//! the channel transport, barrier and allreduce scaling with rank count.
//! (Wall-clock on a timeshared host; these measure the substrate's real
//! overhead, unlike the virtual cost model.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcdlb_mp::{collectives, World};

fn bench_ping_pong(c: &mut Criterion) {
    c.bench_function("p2p_ping_pong_1000x", |b| {
        b.iter(|| {
            World::new(2).run(|comm| {
                for i in 0..1000u64 {
                    if comm.rank() == 0 {
                        comm.send(1, 1, i);
                        let _: u64 = comm.recv(1, 2);
                    } else {
                        let x: u64 = comm.recv(0, 1);
                        comm.send(0, 2, x);
                    }
                }
            })
        })
    });
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_100x");
    for p in [4usize, 9, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    for t in 0..100 {
                        collectives::barrier(comm, t);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_f64_100x");
    for p in [4usize, 9, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                World::new(p).run(|comm| {
                    let mut acc = comm.rank() as f64;
                    for t in 0..100 {
                        acc = collectives::allreduce(comm, t, acc, f64::max);
                    }
                    acc
                })
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ping_pong, bench_barrier, bench_allreduce
}
criterion_main!(benches);

//! Microbenchmarks of the Lennard-Jones pair kernel — the inner loop that
//! the work model (pair checks × unit cost) abstracts. Calibrating
//! `sec_per_pair` for a given host is done by dividing the measured time
//! per `accumulate` call by the pair count reported here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcdlb_md::force::{PairKernel, WorkCounters};
use pcdlb_md::{LennardJones, Particle, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cell_of_particles(n: usize, origin: f64, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Particle::at_rest(
                (seed * 1000 + i as u64) * 2,
                Vec3::new(
                    origin + rng.gen::<f64>() * 2.56,
                    rng.gen::<f64>() * 2.56,
                    rng.gen::<f64>() * 2.56,
                ),
            )
        })
        .collect()
}

fn bench_pair_kernel(c: &mut Criterion) {
    let kernel = PairKernel::new(LennardJones::paper());
    let mut g = c.benchmark_group("pair_kernel");
    for occupancy in [2usize, 4, 8, 16] {
        let targets = cell_of_particles(occupancy, 0.0, 1);
        let neighbors = cell_of_particles(occupancy, 2.56, 2);
        let pairs = (occupancy * occupancy) as u64;
        g.throughput(Throughput::Elements(pairs));
        g.bench_with_input(
            BenchmarkId::new("cell_vs_cell", occupancy),
            &occupancy,
            |b, _| {
                let mut forces = vec![Vec3::ZERO; targets.len()];
                b.iter(|| {
                    let mut w = WorkCounters::default();
                    forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
                    kernel.accumulate(
                        std::hint::black_box(&targets),
                        &mut forces,
                        std::hint::black_box(&neighbors),
                        Vec3::ZERO,
                        &mut w,
                    );
                    w.pair_checks
                });
            },
        );
    }
    g.finish();
}

fn bench_neighbor_list_vs_cells(c: &mut Criterion) {
    // The classic trade: 27-cell search checks every candidate each step;
    // a Verlet list pays a build now and then for far fewer checks.
    use pcdlb_md::neighbors::NeighborList;
    use pcdlb_md::serial::SerialSim;
    use pcdlb_md::thermostat::Thermostat;
    use pcdlb_md::{init, LennardJones};

    let box_len = 15.4; // 6 cells of 2.56
    let n = (0.256 * box_len * box_len * box_len) as usize;
    let mut ps = init::simple_cubic(n, box_len);
    init::maxwell_boltzmann(&mut ps, 0.722, 1);
    let lj = LennardJones::paper();

    let mut g = c.benchmark_group("force_evaluation");
    g.bench_function("cell_search_27", |b| {
        // SerialSim recomputes forces on construction; reuse one instance
        // per iteration by stepping (forces recomputed inside).
        let mut sim = SerialSim::new(ps.clone(), 6, box_len, lj, 1e-9, Thermostat::off());
        b.iter(|| {
            sim.step();
            sim.last_work().pair_checks
        });
    });
    g.bench_function("verlet_list_reuse", |b| {
        let list = NeighborList::build(&ps, box_len, &lj, 0.4);
        b.iter(|| list.compute_forces(&ps, &lj).1.pair_checks);
    });
    g.bench_function("verlet_list_build", |b| {
        b.iter(|| NeighborList::build(&ps, box_len, &lj, 0.4).num_pairs());
    });
    g.finish();
}

fn bench_half_vs_full_shell(c: &mut Criterion) {
    // The whole-grid force pass: the seed's 27-offset full-shell sweep
    // (each pair evaluated from both ends) against the production
    // 13-offset half-shell kernel. Same grid, same reported WorkCounters;
    // the throughput gap is the kernel speedup `steps-per-sec` records in
    // BENCH_force.json.
    use pcdlb_bench::full_shell_forces;
    use pcdlb_md::cells::CellGrid;
    use pcdlb_md::force::ExternalPull;
    use pcdlb_md::init;
    use pcdlb_md::serial::compute_forces_half_shell;

    let nc = 8usize;
    let box_len = 2.56 * nc as f64;
    let n = (0.256 * box_len.powi(3)) as usize;
    let mut ps = init::simple_cubic(n, box_len);
    init::maxwell_boltzmann(&mut ps, 0.722, 1);
    let mut grid = CellGrid::new(nc, box_len);
    for p in ps {
        grid.insert(p);
    }
    grid.canonicalize();
    let kernel = PairKernel::new(LennardJones::paper());
    let mut forces = Vec::new();
    let checks = full_shell_forces(&grid, &kernel, &mut forces).pair_checks;

    let mut g = c.benchmark_group("force_pass");
    g.throughput(Throughput::Elements(checks));
    g.bench_function("full_shell_27", |b| {
        b.iter(|| full_shell_forces(std::hint::black_box(&grid), &kernel, &mut forces).pair_checks)
    });
    g.bench_function("half_shell_13", |b| {
        b.iter(|| {
            compute_forces_half_shell(
                std::hint::black_box(&grid),
                &kernel,
                &ExternalPull::None,
                &mut forces,
            )
            .pair_checks
        })
    });
    g.finish();
}

fn bench_lj_scalar(c: &mut Criterion) {
    let lj = LennardJones::paper();
    c.bench_function("lj_force_energy_at_r1.2", |b| {
        b.iter(|| {
            let r2 = std::hint::black_box(1.44);
            (lj.force_over_r_r2(r2), lj.energy_r2(r2))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pair_kernel, bench_neighbor_list_vs_cells, bench_half_vs_full_shell, bench_lj_scalar
}
criterion_main!(benches);

//! Regenerates paper Fig. 5: execution time per time step as a function
//! of time step, DDM vs DLB-DDM, for (a) m = 4 and (b) m = 2.
//!
//! The paper's claim (Sec. 3.3): as the supercooled gas concentrates, DDM
//! execution time rises steeply while DLB-DDM stays nearly flat, and the
//! effect is stronger for m = 4 (9/16 of the domain movable) than m = 2
//! (1/4 movable).
//!
//! Usage:
//!   fig5 [--scale small|mid|paper] [--steps N] [--pull K] [--every E]
//!
//! - `small` (default): P = 9 versions of the two workloads with the
//!   central-pull concentration driver — minutes on one core;
//! - `mid`: the paper's P = 36 geometries, shortened, driven;
//! - `paper`: P = 36, N = 59319 / 8000, natural condensation (no pull),
//!   10⁴ steps — the full experiment.

use pcdlb_bench::{print_header, Args};
use pcdlb_sim::{run, RunConfig, RunReport};

struct Variant {
    label: &'static str,
    cfg: RunConfig,
}

fn variants(scale: &str, steps: u64, pull: f64, gain: f64) -> Vec<Variant> {
    let build = |label, mut cfg: RunConfig| {
        cfg.steps = steps;
        cfg.central_pull = pull;
        cfg.dlb_min_gain = gain;
        Variant { label, cfg }
    };
    match scale {
        "small" => vec![
            build("a(m=4)", RunConfig::from_p_m_density(9, 4, 0.256)),
            build("b(m=2)", RunConfig::from_p_m_density(9, 2, 0.256)),
        ],
        "mid" => vec![
            build("a(m=4)", RunConfig::fig5a()),
            build("b(m=2)", RunConfig::fig5b()),
        ],
        "paper" => vec![
            build("a(m=4)", RunConfig::fig5a()),
            build("b(m=2)", RunConfig::fig5b()),
        ],
        other => panic!("unknown --scale `{other}` (small|mid|paper)"),
    }
}

fn run_pair(v: &Variant) -> (RunReport, RunReport) {
    let mut ddm = v.cfg.clone();
    ddm.dlb = false;
    let mut dlb = v.cfg.clone();
    dlb.dlb = true;
    (run(&ddm), run(&dlb))
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", "small");
    let default_steps = if scale == "paper" { 10_000 } else { 2000 };
    let default_pull = if scale == "paper" { 0.0 } else { 0.08 };
    let steps = args.get_u64("steps", default_steps);
    let pull = args.get_f64("pull", default_pull);
    let every = args.get_u64("every", (steps / 50).max(1));
    let gain = args.get_f64("gain", 0.05);

    println!("# Fig. 5 reproduction: execution time per step, DDM vs DLB-DDM");
    println!("# scale={scale} steps={steps} pull={pull} gain={gain}");
    for v in variants(scale, steps, pull, gain) {
        let (ddm, dlb) = run_pair(&v);
        println!(
            "\n## Fig 5({}) P={} N={} C={} m={}",
            v.label,
            v.cfg.p,
            v.cfg.n_particles,
            v.cfg.total_cells(),
            v.cfg.m()
        );
        print_header(&["step", "Tt_DDM[s]", "Tt_DLB-DDM[s]", "C0/C", "n"]);
        for (a, b) in ddm.records.iter().zip(&dlb.records) {
            if a.step.is_multiple_of(every) {
                println!(
                    "{}\t{:.6}\t{:.6}\t{:.4}\t{:.3}",
                    a.step, a.t_step, b.t_step, b.c0_over_c, b.n_factor
                );
            }
        }
        // Late-phase summary: mean over the final 20% of steps.
        let from = (ddm.records.len() * 4) / 5;
        let to = ddm.records.len();
        let t_ddm = ddm.mean_t_step(from, to);
        let t_dlb = dlb.mean_t_step(from, to);
        println!(
            "# late-phase mean Tt: DDM {t_ddm:.6} s, DLB-DDM {t_dlb:.6} s, speedup {:.2}x",
            t_ddm / t_dlb
        );
        let transfers: u32 = dlb.records.iter().map(|r| r.transfers).sum();
        println!("# DLB transfers over the run: {transfers}");
    }
}

//! Ablation: DLB invocation frequency.
//!
//! The paper asserts (Sec. 2.3): "The overhead of DLB is small so that MD
//! simulations are able to execute DLB operations every time step." This
//! ablation runs the same concentrating workload with DLB every
//! k ∈ {1, 5, 25, 100} steps (and off) and reports late-phase execution
//! time and total transfers — quantifying both the claim (k = 1 is
//! affordable) and the cost of balancing too rarely.
//!
//! Usage: dlb_freq [--p P] [--m M] [--steps N] [--pull K] [--gain G]

use pcdlb_bench::{print_header, Args};
use pcdlb_sim::{run, RunConfig};

fn main() {
    let args = Args::parse();
    let p = args.get_usize("p", 9);
    let m = args.get_usize("m", 4);
    let steps = args.get_u64("steps", 1500);
    let pull = args.get_f64("pull", 0.08);

    println!("# DLB-frequency ablation on a concentrating workload");
    let base = {
        let mut c = RunConfig::from_p_m_density(p, m, 0.256);
        c.steps = steps;
        c.central_pull = pull;
        c.dlb_min_gain = args.get_f64("gain", 0.05);
        c
    };
    println!(
        "# P={p} m={m} N={} steps={steps} pull={pull}",
        base.n_particles
    );
    print_header(&[
        "dlb_every",
        "late_Tt[s]",
        "late_Fmax-Fmin[s]",
        "transfers",
        "dlb_msgs_share",
    ]);

    let mut off = base.clone();
    off.dlb = false;
    let off_rep = run(&off);
    let late = |rep: &pcdlb_sim::RunReport| {
        let from = rep.records.len() * 4 / 5;
        let n = (rep.records.len() - from) as f64;
        let t = rep.records[from..].iter().map(|r| r.t_step).sum::<f64>() / n;
        let gap = rep.records[from..]
            .iter()
            .map(|r| r.f_max - r.f_min)
            .sum::<f64>()
            / n;
        (t, gap)
    };
    let (t_off, gap_off) = late(&off_rep);
    println!("off\t{t_off:.6}\t{gap_off:.6}\t0\t0.00");

    for k in [1u64, 5, 25, 100] {
        let mut cfg = base.clone();
        cfg.dlb = true;
        cfg.dlb_interval = k;
        let rep = run(&cfg);
        let (t, gap) = late(&rep);
        let transfers: u32 = rep.records.iter().map(|r| r.transfers).sum();
        // Share of messages beyond the DDM baseline, attributable to DLB.
        let extra = rep.msgs_sent.saturating_sub(off_rep.msgs_sent) as f64;
        println!(
            "{k}\t{t:.6}\t{gap:.6}\t{transfers}\t{:.2}",
            extra / rep.msgs_sent.max(1) as f64
        );
    }
    println!("# late_* values average the final 20% of steps");
}

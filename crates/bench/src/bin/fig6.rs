//! Regenerates paper Fig. 6: the decomposition of execution time into
//! `Tt`, `Fmax`, `Fave`, `Fmin` as a function of time step, for (a) DDM
//! and (b) DLB-DDM on the Fig. 5(a) workload.
//!
//! The paper's observations (Sec. 3.3): `Tt` tracks `Fmax` (synchronous
//! steps run at the slowest PE's speed); under DDM the `Fmax − Fmin` gap
//! widens rapidly with concentration; under DLB-DDM it stays small until
//! the concentration exceeds the DLB limit, after which it starts to
//! grow.
//!
//! Usage: fig6 [--scale small|mid|paper] [--steps N] [--pull K]
//!             [--gain G] [--every E]

use pcdlb_bench::{print_header, Args};
use pcdlb_sim::{run, RunConfig, RunReport};

fn print_series(title: &str, rep: &RunReport, every: u64) {
    println!("\n## {title}");
    print_header(&["step", "Tt[s]", "Fmax[s]", "Fave[s]", "Fmin[s]"]);
    for r in &rep.records {
        if r.step.is_multiple_of(every) {
            println!(
                "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
                r.step, r.t_step, r.f_max, r.f_ave, r.f_min
            );
        }
    }
    // Quantify the paper's qualitative observations.
    let late = &rep.records[rep.records.len() * 4 / 5..];
    let gap_late: f64 = late.iter().map(|r| r.f_max - r.f_min).sum::<f64>() / late.len() as f64;
    let early = &rep.records[..rep.records.len() / 5];
    let gap_early: f64 = early.iter().map(|r| r.f_max - r.f_min).sum::<f64>() / early.len() as f64;
    println!(
        "# mean Fmax-Fmin: early {gap_early:.6} s, late {gap_late:.6} s, growth {:.2}x",
        gap_late / gap_early.max(1e-12)
    );
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", "small");
    let steps = args.get_u64("steps", if scale == "paper" { 10_000 } else { 2000 });
    let pull = args.get_f64("pull", if scale == "paper" { 0.0 } else { 0.08 });
    let gain = args.get_f64("gain", 0.05);
    let every = args.get_u64("every", (steps / 50).max(1));

    let mut base = match scale {
        "small" => RunConfig::from_p_m_density(9, 4, 0.256),
        "mid" | "paper" => RunConfig::fig5a(),
        other => panic!("unknown --scale `{other}`"),
    };
    base.steps = steps;
    base.central_pull = pull;
    base.dlb_min_gain = gain;

    println!("# Fig. 6 reproduction: Tt / Fmax / Fave / Fmin per step");
    println!(
        "# scale={scale} P={} N={} C={} m={} steps={steps} pull={pull}",
        base.p,
        base.n_particles,
        base.total_cells(),
        base.m()
    );

    let mut ddm = base.clone();
    ddm.dlb = false;
    print_series("(a) DDM", &run(&ddm), every);

    let mut dlb = base.clone();
    dlb.dlb = true;
    print_series("(b) DLB-DDM", &run(&dlb), every);
}

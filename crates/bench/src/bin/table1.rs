//! Regenerates paper Table 1: the ratio E/T of the experimental boundary
//! to the theoretical upper bound, for m = 2, 3, 4 across PE counts.
//!
//! The paper's findings this must reproduce:
//! - E/T barely depends on the number of PEs (columns nearly equal);
//! - E/T grows with m (the experimental boundary approaches the bound);
//! - E/T exceeds one half for most cases.
//!
//! Each cell averages `C₀/C(boundary) / f(m, n(boundary))` over the
//! density sweep, as in Fig. 10.
//!
//! Usage: table1 [--steps N] [--pull K] [--seeds S] [--paper]
//!   Default PE counts {9, 16} keep the default run in minutes;
//!   `--paper` uses the paper's {16, 36, 64} (much heavier: N grows with
//!   P at fixed m because the cell size is pinned to the cutoff).

use pcdlb_bench::{measure_boundary_averaged, Args};

fn main() {
    let args = Args::parse();
    let steps = args.get_u64("steps", 2200);
    let pull = args.get_f64("pull", 0.08);
    let nseeds = args.get_u64("seeds", 1);
    let seeds: Vec<u64> = (1..=nseeds).collect();
    let pes: Vec<usize> = if args.flag("paper") {
        vec![16, 36, 64]
    } else {
        vec![9, 16]
    };
    let densities = [0.128, 0.256, 0.384, 0.512];

    println!("# Table 1 reproduction: ratio E/T of experimental boundary to theoretical bound");
    println!("# steps={steps} pull={pull} seeds={nseeds} densities={densities:?}");
    println!(
        "#\n# m \\ P\t{}",
        pes.iter()
            .map(|p| format!("{p}PEs"))
            .collect::<Vec<_>>()
            .join("\t")
    );

    for m in [2usize, 3, 4] {
        let mut row = format!("{m}");
        for &p in &pes {
            let ratios: Vec<f64> = densities
                .iter()
                .filter_map(|&rho| {
                    measure_boundary_averaged(p, m, rho, steps, pull, &seeds).map(|b| b.e_over_t())
                })
                .collect();
            if ratios.is_empty() {
                row.push_str("\t-");
            } else {
                let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
                row.push_str(&format!("\t{mean:.2}"));
            }
        }
        println!("{row}");
    }
    println!("# (each cell: mean over the density sweep of C0/C at the detected");
    println!("#  boundary divided by f(m, n) at the measured concentration factor)");
}

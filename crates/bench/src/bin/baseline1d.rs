//! Baseline comparison: permanent-cell DLB (this paper) vs the 1-D
//! moving-boundary balancer of the prior art it cites (Brugé & Fornili
//! \[4\], Kohring \[5\]), on identical workloads.
//!
//! The paper's argument for permanent cells: 1-D methods "are not
//! extended to 3-dimensional MD simulations easily" — a plane balancer
//! only redistributes along one axis, so any concentration that varies in
//! the other two axes is invisible to it. Two workloads make the point:
//!
//! - **slab**: particles clustered in low-x slabs (uniform in y, z) — the
//!   best case for the 1-D balancer;
//! - **hotspot**: a pull toward the centre of one PE tile (varies in x
//!   *and* y) — balanceable by the 2-D permanent-cell scheme, mostly
//!   invisible to the 1-D one.
//!
//! Usage: baseline1d [--p P] [--m M] [--steps N] [--pull K]

use pcdlb_bench::{print_header, Args};
use pcdlb_sim::plane::run_plane;
use pcdlb_sim::{run, Lattice, RunConfig, RunReport};

fn late_imbalance(rep: &RunReport) -> (f64, f64) {
    let from = rep.records.len() * 3 / 4;
    let late = &rep.records[from..];
    let n = late.len() as f64;
    let ratio = late
        .iter()
        .map(|r| r.f_max / r.f_ave.max(1e-300))
        .sum::<f64>()
        / n;
    let t = late.iter().map(|r| r.t_step).sum::<f64>() / n;
    (ratio, t)
}

fn report_row(label: &str, rep: &RunReport) {
    let (ratio, t) = late_imbalance(rep);
    let transfers: u32 = rep.records.iter().map(|r| r.transfers).sum();
    println!("{label}\t{ratio:.2}\t{t:.6}\t{transfers}");
}

/// Both decompositions, balanced and not, so that each balancer is
/// compared against its own decomposition's static distribution.
fn run_all_four(base: &RunConfig) {
    let mut c = base.clone();
    c.dlb = false;
    report_row("pillar-static", &run(&c));
    c.dlb = true;
    report_row("pillar-dlb", &run(&c));
    c.dlb = false;
    report_row("plane-static", &run_plane(&c));
    c.dlb = true;
    report_row("plane-1d-dlb", &run_plane(&c));
}

fn main() {
    let args = Args::parse();
    let p = args.get_usize("p", 9);
    // m = 6 gives nc = 18 planes over 9 PEs — exactly 2 planes per PE.
    // The plane method needs nc >> P to have any balancing freedom at
    // all (its granularity is a whole plane, the pillar's is a column of
    // nc cells out of m²·nc); the printout quantifies what remains.
    let m = args.get_usize("m", 6);
    let steps = args.get_u64("steps", 900);
    let pull = args.get_f64("pull", 0.12);

    let mut base = RunConfig::from_p_m_density(p, m, 0.128);
    base.steps = steps;
    base.dlb_min_gain = 0.08;

    println!("# Permanent-cell DLB vs 1-D moving-boundary baseline");
    println!("# P={p} m={m} N={} steps={steps}", base.n_particles);

    // Workload 1: slab imbalance (1-D balancer's best case).
    println!("\n## slab workload (clustered in low-x slabs)");
    let mut slab = base.clone();
    slab.density = 0.04;
    slab.lattice = Lattice::Cluster { fill: 0.5 };
    print_header(&["balancer", "late_Fmax/Fave", "late_Tt[s]", "transfers"]);
    run_all_four(&slab);

    // Workload 2: the granularity wall — the same slab imbalance, but at
    // P = nc every PE owns exactly one plane, so the 1-D balancer has no
    // move left (a whole plane is its smallest unit); the permanent-cell
    // scheme's unit is one column out of m² per tile, so it still works.
    println!("\n## granularity workload (same slab, nc = P: one plane per PE)");
    let mut tight = RunConfig::from_p_m_density(p, 3, 0.128); // nc = 9 = P
    tight.steps = steps;
    tight.dlb_min_gain = base.dlb_min_gain;
    tight.density = 0.04;
    tight.lattice = Lattice::Cluster { fill: 0.5 };
    print_header(&["balancer", "late_Fmax/Fave", "late_Tt[s]", "transfers"]);
    run_all_four(&tight);

    // Workload 3: single-tile hotspot (2-D concentration). Needs a longer,
    // harder drive than the slab for the concentration to build up.
    println!("\n## hotspot workload (pull toward one PE tile's centre)");
    let mut hot = base.clone();
    hot.steps = args.get_u64("hot-steps", 2 * steps);
    hot.central_pull = pull;
    hot.pull_frac = Some(hot.hot_tile_frac());
    print_header(&["balancer", "late_Fmax/Fave", "late_Tt[s]", "transfers"]);
    run_all_four(&hot);
    println!("# expectation: with planes to spare the 1-D balancer wins its");
    println!("# home turf (x slab); at P = nc it is frozen (0 transfers) while");
    println!("# the permanent-cell scheme still balances; on the hotspot both");
    println!("# help — the pillar scheme's real edge at scale is communication");
    println!("# volume and P ≤ nc (see the `shapes` bench and DESIGN.md).");
}

//! Measured (not modelled) communication for the three domain shapes of
//! paper Fig. 2, using the three real simulator implementations: plane
//! (ring), square pillar (2-D torus) and cube (3-D torus) on the same
//! physical workload. Complements the analytic `shapes` bench with actual
//! message counts and wire bytes, validating the model's trade-offs.
//!
//! The three decompositions need compatible PE counts: the default uses
//! P_plane = P_pillar = 4 and P_cube = 8 at the same nc (per-PE numbers
//! are normalised), with `--big` for a heavier configuration.
//!
//! Usage: shapes_measured [--steps N] [--big]

use pcdlb_bench::{print_header, Args};
use pcdlb_sim::cube::run_cube;
use pcdlb_sim::plane::run_plane;
use pcdlb_sim::{run, RunConfig, RunReport};

fn row(label: &str, rep: &RunReport, p: usize, steps: u64) {
    let per_pe_step = p as f64 * steps as f64;
    println!(
        "{label}\t{}\t{:.1}\t{:.1}\t{:.3}",
        p,
        rep.msgs_sent as f64 / per_pe_step,
        rep.bytes_sent as f64 / per_pe_step / 1024.0,
        rep.comm_virtual_s / per_pe_step * 1e3
    );
}

fn regime(label: &str, nc: usize, p_2d: usize, p_3d: usize, steps: u64) {
    let density = 0.25;
    let n = (density * (2.56 * nc as f64).powi(3)).round() as usize;
    println!("\n## {label}: nc={nc} N={n} steps={steps}");
    print_header(&[
        "shape",
        "P",
        "msgs/PE/step",
        "KiB/PE/step",
        "model_ms/PE/step",
    ]);
    let base = |p: usize| {
        let mut c = RunConfig::new(n, nc, p, density);
        c.steps = steps;
        c.dlb = false;
        c
    };
    row("plane", &run_plane(&base(p_2d)), p_2d, steps);
    row("pillar", &run(&base(p_2d)), p_2d, steps);
    row("cube", &run_cube(&base(p_3d)), p_3d, steps);
}

fn main() {
    let args = Args::parse();
    let steps = args.get_u64("steps", 40);

    println!("# Measured per-PE per-step communication of the three domain shapes");
    println!("# (uniform gas, DDM, no balancing)");
    // Small machine: the plane's 2 messages and modest slabs win.
    regime("small machine", 8, 4, 8, steps);
    // Mid-size: the pillar's ring of columns beats whole planes.
    regime("mid-size machine", 16, 16, 64, steps.min(25));
    println!("\n# model_ms uses the T3E postal cost model. Expected: plane");
    println!("# cheapest on the small machine; pillar moves the fewest bytes at");
    println!("# mid-size; the cube always trades many small messages for volume —");
    println!("# the regimes the analytic `shapes` bench predicts (paper Sec. 2.2).");
}

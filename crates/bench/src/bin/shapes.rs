//! Ablation: communication cost of the three domain shapes (paper Fig. 2
//! and the Sec. 2.2 claim, via ref. \[8\], that the square pillar is best
//! for mid-size simulations on mid-size machines).
//!
//! Prints, per configuration, the modelled per-step ghost-exchange time of
//! plane / square-pillar / cube domains under the T3E-flavoured postal
//! cost model, plus the winner. Expected shape: plane wins only at tiny
//! PE counts, square pillar in the paper's mid-size regime, cube at
//! massive scale.
//!
//! Usage: shapes [--occupancy X] [--bytes-per-particle B]

use pcdlb_bench::{print_header, Args};
use pcdlb_domain::DomainShape;
use pcdlb_mp::CostModel;

fn main() {
    let args = Args::parse();
    let occupancy = args.get_f64("occupancy", 4.3); // paper Fig. 5(a) average
    let bpp = args.get_f64("bytes-per-particle", 56.0);
    let bytes_per_cell = occupancy * bpp;
    let model = CostModel::t3e(None);

    println!("# Domain-shape ablation: modelled ghost-exchange time per step per PE");
    println!(
        "# postal model: {} us latency, {} MB/s; {} bytes/cell",
        model.latency_s * 1e6,
        model.bandwidth_bps / 1e6,
        bytes_per_cell
    );
    print_header(&["nc", "P", "plane[us]", "pillar[us]", "cube[us]", "winner"]);

    let configs: [(usize, usize); 8] = [
        (8, 4),
        (12, 16),
        (24, 36), // paper Fig. 5(a)
        (12, 36), // paper Fig. 5(b)
        (32, 64),
        (64, 256),
        (128, 1024),
        (512, 4096),
    ];
    for (nc, p) in configs {
        let times: Vec<f64> = DomainShape::ALL
            .iter()
            .map(|s| s.ghost_exchange_time(nc, p, bytes_per_cell, &model))
            .collect();
        let winner = DomainShape::ALL
            .iter()
            .zip(&times)
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("three shapes")
            .0;
        println!(
            "{nc}\t{p}\t{:.1}\t{:.1}\t{:.1}\t{}",
            times[0] * 1e6,
            times[1] * 1e6,
            times[2] * 1e6,
            winner.name()
        );
    }
    println!("# ghost cells per PE (volume term only):");
    print_header(&["nc", "P", "plane", "pillar", "cube"]);
    for (nc, p) in configs {
        println!(
            "{nc}\t{p}\t{:.0}\t{:.0}\t{:.0}",
            DomainShape::Plane.ghost_cells(nc, p),
            DomainShape::SquarePillar.ghost_cells(nc, p),
            DomainShape::Cube.ghost_cells(nc, p)
        );
    }
}

//! Regenerates paper Fig. 9: the trajectory of one MD simulation in
//! `(n, C₀/C)` space, with the experimental boundary point marked.
//!
//! The run concentrates over time, so `C₀/C` climbs; the boundary point is
//! the step at which `Fmax − Fmin` of the DLB run begins a sustained
//! increase (paper Sec. 4.2). The theoretical bound `f(m, n)` is printed
//! alongside so the crossing is visible in the numbers.
//!
//! Usage: fig9 [--p P] [--m M] [--density RHO] [--steps N] [--pull K]
//!             [--gain G] [--every E]

use pcdlb_bench::{detect_boundary_index, print_header, Args};
use pcdlb_core::theory;
use pcdlb_sim::{run, RunConfig};

fn main() {
    let args = Args::parse();
    let p = args.get_usize("p", 9);
    let m = args.get_usize("m", 2);
    let density = args.get_f64("density", 0.256);
    let steps = args.get_u64("steps", 2000);
    let pull = args.get_f64("pull", 0.08);
    let every = args.get_u64("every", (steps / 50).max(1));

    let mut cfg = RunConfig::from_p_m_density(p, m, density);
    cfg.steps = steps;
    cfg.central_pull = pull;
    cfg.dlb = true;
    cfg.pull_corner = args.flag("corner");
    cfg.dlb_min_gain = args.get_f64("gain", 0.05);

    println!("# Fig. 9 reproduction: trajectory in (n, C0/C) space");
    println!(
        "# P={p} m={m} rho={density} N={} steps={steps} pull={pull}",
        cfg.n_particles
    );
    let report = run(&cfg);

    let boundary = detect_boundary_index(&report);
    print_header(&["step", "n", "C0/C", "f(m,n)", "Fmax-Fmin[s]"]);
    for r in &report.records {
        if r.step.is_multiple_of(every) {
            println!(
                "{}\t{:.4}\t{:.4}\t{:.4}\t{:.6}",
                r.step,
                r.n_factor,
                r.c0_over_c,
                theory::upper_bound(m, r.n_factor),
                r.imbalance()
            );
        }
    }
    match boundary {
        Some(idx) => {
            let rec = &report.records[idx];
            println!(
                "# experimental boundary point: step {} at (n={:.4}, C0/C={:.4}); \
                 theoretical bound f({m},{:.4})={:.4}; E/T={:.3}",
                rec.step,
                rec.n_factor,
                rec.c0_over_c,
                rec.n_factor,
                theory::upper_bound(m, rec.n_factor),
                rec.c0_over_c / theory::upper_bound(m, rec.n_factor),
            );
        }
        None => println!(
            "# no boundary detected within {steps} steps — DLB kept the load \
             balanced for the whole run (increase --steps or --pull)"
        ),
    }
}

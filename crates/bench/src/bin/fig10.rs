//! Regenerates paper Fig. 10: theoretical upper bounds `f(m, n)` and
//! experimental boundary points/lines in `(n, C₀/C)` space for
//! m = 2, 3, 4, one boundary point per reduced density
//! ρ* ∈ {0.128, 0.256, 0.384, 0.512}.
//!
//! The paper's findings this must reproduce:
//! - every experimental boundary point lies **below** the theoretical
//!   bound (`E/T < 1`);
//! - the experimental boundary sits closer to the bound for larger `m`.
//!
//! Usage: fig10 [--p P] [--steps N] [--pull K] [--seeds S] [--paper]
//!   (--paper uses P = 36 as in the paper; default P = 9 — the bound does
//!    not depend on P and Table 1 shows E/T barely does.)

use pcdlb_bench::{measure_boundary_averaged, print_header, Args};
use pcdlb_core::metrics::least_squares_line;
use pcdlb_core::theory;

fn main() {
    let args = Args::parse();
    let p = if args.flag("paper") {
        36
    } else {
        args.get_usize("p", 9)
    };
    let steps = args.get_u64("steps", 2200);
    let pull = args.get_f64("pull", 0.08);
    let nseeds = args.get_u64("seeds", 1);
    let seeds: Vec<u64> = (1..=nseeds).collect();
    let densities = [0.128, 0.256, 0.384, 0.512];

    println!("# Fig. 10 reproduction: theoretical bound vs experimental boundary");
    println!("# P={p} steps={steps} pull={pull} seeds={nseeds}");

    for m in [2usize, 3, 4] {
        println!("\n## Fig 10 (m={m})");
        println!("# theoretical bound f({m}, n):");
        print_header(&["n", "f(m,n)"]);
        let mut k = 1.0;
        while k <= 4.0 + 1e-9 {
            println!("{k:.2}\t{:.4}", theory::upper_bound(m, k));
            k += 0.5;
        }
        println!("# experimental boundary points:");
        print_header(&["rho", "n", "C0/C", "f(m,n)", "E/T", "boundary_step"]);
        let mut pts: Vec<(f64, f64)> = Vec::new();
        let mut ratios: Vec<f64> = Vec::new();
        for &rho in &densities {
            match measure_boundary_averaged(p, m, rho, steps, pull, &seeds) {
                Some(b) => {
                    println!(
                        "{rho}\t{:.4}\t{:.4}\t{:.4}\t{:.3}\t{}",
                        b.n,
                        b.c0_over_c,
                        b.theory,
                        b.e_over_t(),
                        b.step
                    );
                    pts.push((b.n, b.c0_over_c));
                    ratios.push(b.e_over_t());
                }
                None => println!("{rho}\t-\t-\t-\t-\t(no boundary within budget)"),
            }
        }
        if pts.len() >= 2 {
            let (a, b) = least_squares_line(&pts);
            println!("# experimental boundary (least squares): C0/C = {a:.4} + {b:.4}*n");
        }
        if !ratios.is_empty() {
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let below = ratios.iter().filter(|&&r| r < 1.0).count();
            println!(
                "# mean E/T = {mean:.3} ({below}/{} points below the theoretical bound)",
                ratios.len()
            );
        }
    }
}

//! `steps-per-sec` — end-to-end throughput harness for the half-shell
//! force kernel, writing machine-readable results to `BENCH_force.json`.
//!
//! Two measurements:
//!
//! 1. **Force phase in isolation** — four kernels on the same
//!    paper-density gas grid, in historical order: the seed's full-shell
//!    27-offset pass (`pcdlb_bench::full_shell_forces`, each pair
//!    evaluated from both ends), the production 13-offset half-shell
//!    pass (`pcdlb_md::serial::compute_forces_half_shell`), its SoA
//!    twin (`pcdlb_md::soa::compute_forces_half_shell_soa`, flat x/y/z
//!    arrays the compiler can vectorize), and the Verlet replay of a
//!    recorded CSR pair list (`VerletList`, candidates within
//!    `r_c + skin`, including the per-call position reload production
//!    pays). All four book identical full-shell `WorkCounters`, so
//!    checks/sec are directly comparable; `speedup` (half vs full,
//!    target ≥ 1.6×) and `soa_ratio` (best SoA-path vs half-shell,
//!    target ≥ 1.3×) are the headline numbers, and
//!    `checks_per_sec_trend` records the whole progression.
//! 2. **Whole steps per second** — the serial reference and the SPMD
//!    simulator swept over P ∈ {1, 4, 9, 16} PE grids (ranks are
//!    threads; on a single-core host the parallel rows measure protocol
//!    overhead, not speedup — see README). The sweep writes
//!    `BENCH_scaling.json` with speedups vs serial and, when built with
//!    `--features phase-timing`, a wall-clock per-phase breakdown
//!    (force / ghost / migrate / DLB) summed over ranks.
//!
//! Every SPMD row also carries `bytes_on_wire`: per-phase byte totals of
//! the frames actually shipped (delta ghost frames, coalesced step
//! messages) next to the bytes the same content would cost as pre-diet
//! full frames — `ghost_ratio` is the comm-volume-diet figure of merit.
//! Unlike the timings these are deterministic, so CI gates on them.
//!
//! A third, heterogeneous scenario runs the P = 9 grid twice under a
//! drifting per-PE [`SpeedSchedule`] — once with the work-based
//! LoadMetric, once speed-aware — and records each run's mean relative
//! time imbalance `(F_max − F_min) / F_ave` over the back half of the
//! run. The figures derive from modelled virtual step times, not wall
//! clock, so they are deterministic and gateable.
//!
//! Usage: `cargo run --release -p pcdlb-bench --bin steps_per_sec`
//! (options: `--nc`, `--density`, `--iters`, `--steps`, `--out`,
//! `--scaling-out`, `--assert-p4-ratio <min>`,
//! `--assert-soa-ratio <min>`, `--assert-p9-ghost-ratio <min>`,
//! `--assert-hetero-gain <min>`). `--assert-soa-ratio` makes the run
//! fail when neither SoA-path kernel (SoA walk or Verlet replay) beats
//! the half-shell baseline by `<min>`× — a same-host, same-run timing
//! comparison, so no hardware-thread caveat applies.
//! `--assert-p4-ratio` makes the run fail when the P = 4 speedup is
//! below `<min>`, but downgrades to a warning on hosts with fewer than
//! 4 hardware threads, where a parallel speedup is physically
//! impossible. `--assert-p9-ghost-ratio` fails the run when the P = 9
//! ghost-phase wire bytes are not at least `<min>` times smaller than
//! the full-frame baseline (no hardware caveat: byte counts are
//! deterministic). `--assert-hetero-gain` fails the run when the
//! speed-aware metric does not cut the heterogeneous time imbalance by
//! at least `<min>`× vs work-based (also deterministic).

use std::fmt::Write as _;
use std::time::Instant;

use pcdlb_bench::{full_shell_forces, Args};
use pcdlb_md::cells::HALF_OFFSETS_13;
use pcdlb_md::force::ExternalPull;
use pcdlb_md::serial::compute_forces_half_shell;
use pcdlb_md::soa::compute_forces_half_shell_soa;
use pcdlb_md::{init, CellGrid, LennardJones, PairKernel, SegAction, SoaField, Vec3, VerletList};
use pcdlb_sim::{
    run, run_with_phase_times, serial_sim, PhaseTimes, RunConfig, RunReport, SpeedSchedule,
    WireBytes,
};

/// One kernel's timing over `iters` repeated full force passes.
struct KernelTiming {
    seconds_per_call: f64,
    pair_checks: u64,
    checks_per_sec: f64,
}

fn time_kernel<F: FnMut() -> u64>(iters: u64, mut pass: F) -> KernelTiming {
    // Warm-up pass (also yields the per-call pair count).
    let pair_checks = pass();
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..iters {
        sink = sink.wrapping_add(pass());
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let seconds_per_call = secs / iters as f64;
    KernelTiming {
        seconds_per_call,
        pair_checks,
        checks_per_sec: pair_checks as f64 / seconds_per_call,
    }
}

/// One whole-simulation throughput row.
struct StepRow {
    mode: &'static str,
    p: usize,
    steps: u64,
    seconds: f64,
    pair_checks: u64,
    /// Per-phase wall-clock totals over all ranks; all zeros unless the
    /// `phase-timing` feature is enabled (or for the serial row).
    phase: PhaseTimes,
    /// Per-phase bytes-on-wire totals over all ranks (deterministic;
    /// always live). Zeros for the serial row.
    wire: WireBytes,
    /// Ghost delta-channel desyncs summed over all ranks (0 in healthy
    /// runs; a healed desync costs one degraded step on one link).
    ghost_desyncs: u64,
    /// Link-layer retransmissions over all ranks (0 over the perfect
    /// in-process transport).
    retransmits: u64,
    /// Failure-detector suspicion episodes over all ranks (0 over the
    /// perfect in-process transport).
    suspicions: u64,
}

fn json_row(out: &mut String, row: &StepRow) {
    let sps = row.steps as f64 / row.seconds;
    let cps = row.pair_checks as f64 / row.seconds;
    let _ = write!(
        out,
        "    {{ \"mode\": \"{}\", \"p\": {}, \"steps\": {}, \"seconds\": {:.6}, \
         \"steps_per_sec\": {:.3}, \"pair_checks_per_sec\": {:.3e} }}",
        row.mode, row.p, row.steps, row.seconds, sps, cps
    );
}

fn json_scaling_row(out: &mut String, row: &StepRow, serial_sps: f64) {
    let sps = row.steps as f64 / row.seconds;
    let _ = write!(
        out,
        "    {{ \"mode\": \"{}\", \"p\": {}, \"steps\": {}, \"seconds\": {:.6}, \
         \"steps_per_sec\": {:.3}, \"speedup_vs_serial\": {:.3}, \
         \"phases\": {{ \"force\": {:.6}, \"ghost\": {:.6}, \"migrate\": {:.6}, \
         \"dlb\": {:.6}, \"total\": {:.6} }}, \
         \"bytes_on_wire\": {{ \"ghost\": {}, \"ghost_baseline\": {}, \
         \"ghost_ratio\": {:.3}, \"migrate\": {}, \"migrate_baseline\": {}, \
         \"dlb\": {}, \"total\": {} }}, \
         \"reliability\": {{ \"ghost_desyncs\": {}, \"retransmits\": {}, \
         \"suspicions\": {} }} }}",
        row.mode,
        row.p,
        row.steps,
        row.seconds,
        sps,
        sps / serial_sps,
        row.phase.force,
        row.phase.ghost,
        row.phase.migrate,
        row.phase.dlb,
        row.phase.total(),
        row.wire.ghost,
        row.wire.ghost_baseline,
        ghost_ratio(&row.wire),
        row.wire.migrate,
        row.wire.migrate_baseline,
        row.wire.dlb,
        row.wire.total(),
        row.ghost_desyncs,
        row.retransmits,
        row.suspicions
    );
}

/// Comm-volume-diet figure of merit: how many times smaller the ghost
/// phase is on the wire than the pre-diet full-frame layout.
fn ghost_ratio(wire: &WireBytes) -> f64 {
    if wire.ghost == 0 {
        return 1.0;
    }
    wire.ghost_baseline as f64 / wire.ghost as f64
}

/// Mean relative time imbalance `(F_max − F_min) / F_ave` over the back
/// half of a run (DLB has warmed up by then). With a speed schedule
/// installed the `f_*` figures are modelled virtual times — pure
/// functions of the config, so deterministic across hosts.
fn mean_time_imbalance(records: &[pcdlb_sim::StepRecord]) -> f64 {
    let tail = &records[records.len() / 2..];
    tail.iter()
        .map(|r| (r.f_max - r.f_min) / r.f_ave)
        .sum::<f64>()
        / tail.len() as f64
}

fn json_hetero_row(out: &mut String, metric: &str, report: &RunReport, seconds: f64) {
    let steps = report.records.len() as f64;
    let transfers: u32 = report.records.iter().map(|r| r.transfers).sum();
    let _ = write!(
        out,
        "      {{ \"metric\": \"{}\", \"steps_per_sec\": {:.3}, \
         \"time_imbalance\": {:.4}, \"transfers\": {} }}",
        metric,
        steps / seconds,
        mean_time_imbalance(&report.records),
        transfers
    );
}

fn main() {
    let args = Args::parse();
    // nc must divide evenly onto every torus side used below (1, 2, 3).
    let nc = args.get_usize("nc", 12);
    let density = args.get_f64("density", 0.256);
    let iters = args.get_u64("iters", 20);
    let steps = args.get_u64("steps", 30);
    let out_path = args.get("out", "BENCH_force.json").to_string();
    let scaling_path = args.get("scaling-out", "BENCH_scaling.json").to_string();
    // 0.0 disables the assertions (the default).
    let assert_p4 = args.get_f64("assert-p4-ratio", 0.0);
    let assert_soa = args.get_f64("assert-soa-ratio", 0.0);
    let assert_p9_ghost = args.get_f64("assert-p9-ghost-ratio", 0.0);
    let assert_hetero = args.get_f64("assert-hetero-gain", 0.0);

    // --- 1. Force phase: full-shell baseline vs half-shell kernel. ---
    let box_len = 2.56 * nc as f64;
    let n = (density * box_len.powi(3)).round() as usize;
    let mut ps = init::simple_cubic(n, box_len);
    init::maxwell_boltzmann(&mut ps, 0.722, 1);
    let mut grid = CellGrid::new(nc, box_len);
    for p in ps {
        grid.insert(p);
    }
    grid.canonicalize();
    let kernel = PairKernel::new(LennardJones::paper());

    let mut forces: Vec<Vec3> = Vec::new();
    let full = time_kernel(iters, || {
        full_shell_forces(&grid, &kernel, &mut forces).pair_checks
    });
    let half = time_kernel(iters, || {
        compute_forces_half_shell(&grid, &kernel, &ExternalPull::None, &mut forces).pair_checks
    });
    let mut soa = SoaField::new();
    let soa_row = time_kernel(iters, || {
        compute_forces_half_shell_soa(&grid, &kernel, &ExternalPull::None, &mut soa, &mut forces)
            .pair_checks
    });

    // Verlet replay: record the CSR candidate list once (a rebuild step),
    // then time the steady-state replay — including the per-call position
    // reload and force fold the production epochs pay every step. The
    // paper-tight cells leave `cell_len − r_c` of slack, which is exactly
    // the skin budget a production epoch on this grid would have.
    let skin = (grid.box_len() / nc as f64 - kernel.lj.rcut).max(0.0);
    let reach2 = (kernel.lj.rcut + skin).powi(2);
    let np = grid.num_particles();
    soa.reset(np, np);
    soa.load_positions(0, grid.particles());
    let mut vlist = VerletList::new();
    for idx in 0..grid.total_cells() {
        let hr = grid.cell_range(idx);
        if hr.is_empty() {
            continue;
        }
        let home = grid.coord_of(idx);
        vlist.record_intra(&soa, hr.clone(), reach2, 0, 0);
        for offset in HALF_OFFSETS_13 {
            let (ncell, shift) = grid.wrap_neighbor(home, offset);
            let nr = grid.cell_range(grid.index(ncell));
            if nr.is_empty() {
                continue;
            }
            vlist.record_pair(&soa, hr.clone(), nr, shift, reach2, 0, 0, 0);
        }
    }
    let box_len_grid = grid.box_len();
    let verlet = time_kernel(iters, || {
        soa.load_positions(0, grid.particles());
        soa.zero_forces();
        let mut w = [pcdlb_md::WorkCounters::default()];
        vlist.replay(
            &kernel,
            &ExternalPull::None,
            box_len_grid,
            &mut soa,
            |_| Some(SegAction::fused()),
            &mut w,
        );
        soa.fold_forces(&mut forces);
        w[0].pair_checks
    });

    for (name, row) in [("half", &half), ("soa", &soa_row), ("verlet", &verlet)] {
        assert_eq!(
            full.pair_checks, row.pair_checks,
            "work accounting diverged between the full-shell and {name} kernels"
        );
    }
    let speedup = full.seconds_per_call / half.seconds_per_call;
    let soa_speedup = half.seconds_per_call / soa_row.seconds_per_call;
    let verlet_speedup = half.seconds_per_call / verlet.seconds_per_call;
    let soa_ratio = soa_speedup.max(verlet_speedup);
    eprintln!(
        "force phase: N = {n}, nc = {nc}, {} full-shell checks/pass, verlet skin {skin:.3}",
        full.pair_checks
    );
    eprintln!(
        "  full-shell {:.3} ms/pass, half-shell {:.3} ms/pass -> speedup {speedup:.2}x",
        full.seconds_per_call * 1e3,
        half.seconds_per_call * 1e3
    );
    eprintln!(
        "  soa {:.3} ms/pass ({soa_speedup:.2}x vs half), verlet replay {:.3} ms/pass \
         ({verlet_speedup:.2}x vs half) -> soa_ratio {soa_ratio:.2}x",
        soa_row.seconds_per_call * 1e3,
        verlet.seconds_per_call * 1e3
    );

    // --- 2. Whole steps/sec: serial vs P ∈ {4, 9, 16} SPMD grids. ---
    let mk_cfg = |p: usize| {
        let mut cfg = RunConfig::new(n, nc, p, density);
        cfg.steps = steps;
        cfg.dlb = p >= 9; // DLB needs a torus side ≥ 3
        cfg.seed = 1;
        cfg
    };
    let mut rows = Vec::new();

    let cfg1 = mk_cfg(1);
    let mut serial = serial_sim(&cfg1);
    let start = Instant::now();
    let mut serial_checks = 0u64;
    for _ in 0..steps {
        serial.step();
        serial_checks += serial.last_work().pair_checks;
    }
    rows.push(StepRow {
        mode: "serial",
        p: 1,
        steps,
        seconds: start.elapsed().as_secs_f64(),
        pair_checks: serial_checks,
        phase: PhaseTimes::default(),
        wire: WireBytes::default(),
        ghost_desyncs: 0,
        retransmits: 0,
        suspicions: 0,
    });

    for p in [4usize, 9, 16] {
        let cfg = mk_cfg(p);
        let start = Instant::now();
        let (report, phase, wire) = run_with_phase_times(&cfg);
        let seconds = start.elapsed().as_secs_f64();
        rows.push(StepRow {
            mode: "spmd",
            p,
            steps,
            seconds,
            pair_checks: report.records.iter().map(|r| r.pair_checks).sum(),
            phase,
            wire,
            ghost_desyncs: report.ghost_desyncs,
            retransmits: report.retransmits,
            suspicions: report.suspicions,
        });
    }
    // --- 3. Heterogeneous machine: work-based vs speed-aware DLB. ---
    // A drifting per-PE speed schedule on the P = 9 grid (fast torus
    // column west of the slow one, so the paper's NW-directed transfer
    // rules give the bottleneck a legal shed route). The work-based
    // LoadMetric sees uniform work and does nothing; the speed-aware
    // metric sees the speed spread as *time* imbalance and moves cells
    // toward the fast PEs. The imbalance figures derive from the
    // modelled virtual step times (`f_max/f_ave/f_min`), not wall
    // clock, so they are deterministic and CI can gate on them.
    let hetero_base = [0.5f64, 1.0, 2.0];
    let (hetero_amplitude, hetero_period) = (0.2f64, 16u64);
    let mk_hetero = |speed_aware: bool| {
        let mut cfg = mk_cfg(9);
        cfg.speed = Some(SpeedSchedule {
            base: hetero_base.to_vec(),
            amplitude: hetero_amplitude,
            period: hetero_period,
        });
        cfg.speed_aware = speed_aware;
        cfg
    };
    let run_hetero = |speed_aware: bool| {
        let start = Instant::now();
        let report = run(&mk_hetero(speed_aware));
        let seconds = start.elapsed().as_secs_f64();
        (report, seconds)
    };
    let (hetero_work, hetero_work_secs) = run_hetero(false);
    let (hetero_time, hetero_time_secs) = run_hetero(true);
    let imb_work = mean_time_imbalance(&hetero_work.records);
    let imb_time = mean_time_imbalance(&hetero_time.records);
    let hetero_gain = imb_work / imb_time;
    eprintln!(
        "hetero P=9: time imbalance {imb_work:.3} (work-based) -> {imb_time:.3} \
         (speed-aware), {hetero_gain:.2}x gain"
    );

    for r in &rows {
        if r.wire.total() == 0 {
            eprintln!(
                "{:>6} P={}: {:.2} steps/sec",
                r.mode,
                r.p,
                r.steps as f64 / r.seconds
            );
        } else {
            eprintln!(
                "{:>6} P={}: {:.2} steps/sec, ghost {} B on wire \
                 (full-frame baseline {} B, {:.2}x smaller)",
                r.mode,
                r.p,
                r.steps as f64 / r.seconds,
                r.wire.ghost,
                r.wire.ghost_baseline,
                ghost_ratio(&r.wire)
            );
        }
    }

    // --- Emit BENCH_force.json (hand-rolled; no serde in the workspace). ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"nc\": {nc}, \"density\": {density}, \"n_particles\": {n}, \
         \"iters\": {iters}, \"steps\": {steps} }},"
    );
    json.push_str("  \"force_phase\": {\n");
    let _ = writeln!(
        json,
        "    \"full_shell\": {{ \"seconds_per_call\": {:.6e}, \"pair_checks_per_call\": {}, \
         \"checks_per_sec\": {:.3e} }},",
        full.seconds_per_call, full.pair_checks, full.checks_per_sec
    );
    let _ = writeln!(
        json,
        "    \"half_shell\": {{ \"seconds_per_call\": {:.6e}, \"pair_checks_per_call\": {}, \
         \"checks_per_sec\": {:.3e} }},",
        half.seconds_per_call, half.pair_checks, half.checks_per_sec
    );
    let _ = writeln!(
        json,
        "    \"soa_half_shell\": {{ \"seconds_per_call\": {:.6e}, \"pair_checks_per_call\": {}, \
         \"checks_per_sec\": {:.3e} }},",
        soa_row.seconds_per_call, soa_row.pair_checks, soa_row.checks_per_sec
    );
    let _ = writeln!(
        json,
        "    \"verlet\": {{ \"seconds_per_call\": {:.6e}, \"pair_checks_per_call\": {}, \
         \"checks_per_sec\": {:.3e}, \"skin\": {skin:.4} }},",
        verlet.seconds_per_call, verlet.pair_checks, verlet.checks_per_sec
    );
    let _ = writeln!(
        json,
        "    \"checks_per_sec_trend\": [{:.3e}, {:.3e}, {:.3e}, {:.3e}],",
        full.checks_per_sec, half.checks_per_sec, soa_row.checks_per_sec, verlet.checks_per_sec
    );
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "    \"soa_speedup\": {soa_speedup:.3},");
    let _ = writeln!(json, "    \"verlet_speedup\": {verlet_speedup:.3},");
    let _ = writeln!(json, "    \"soa_ratio\": {soa_ratio:.3}");
    json.push_str("  },\n");
    json.push_str("  \"steps_per_sec\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_row(&mut json, row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // --- Emit BENCH_scaling.json: the P-sweep with phase breakdowns. ---
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial_sps = rows[0].steps as f64 / rows[0].seconds;
    let p4_speedup = rows
        .iter()
        .find(|r| r.p == 4)
        .map(|r| (r.steps as f64 / r.seconds) / serial_sps)
        .expect("P = 4 row present");

    let mut scaling = String::new();
    scaling.push_str("{\n");
    let _ = writeln!(
        scaling,
        "  \"config\": {{ \"nc\": {nc}, \"density\": {density}, \"n_particles\": {n}, \
         \"steps\": {steps} }},"
    );
    let _ = writeln!(scaling, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(
        scaling,
        "  \"phase_timing_enabled\": {},",
        cfg!(feature = "phase-timing")
    );
    let _ = writeln!(scaling, "  \"p4_speedup_vs_serial\": {p4_speedup:.3},");
    scaling.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_scaling_row(&mut scaling, row, serial_sps);
        scaling.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    scaling.push_str("  ],\n");
    scaling.push_str("  \"heterogeneous\": {\n");
    let _ = writeln!(
        scaling,
        "    \"p\": 9, \"speed_base\": [{}], \"speed_amplitude\": {hetero_amplitude}, \
         \"speed_period\": {hetero_period},",
        hetero_base
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    scaling.push_str("    \"rows\": [\n");
    json_hetero_row(&mut scaling, "work", &hetero_work, hetero_work_secs);
    scaling.push_str(",\n");
    json_hetero_row(&mut scaling, "time", &hetero_time, hetero_time_secs);
    scaling.push_str("\n    ],\n");
    let _ = writeln!(scaling, "    \"time_imbalance_gain\": {hetero_gain:.3}");
    scaling.push_str("  }\n}\n");
    std::fs::write(&scaling_path, &scaling).unwrap_or_else(|e| panic!("write {scaling_path}: {e}"));
    eprintln!("wrote {scaling_path}");

    if assert_p4 > 0.0 {
        if hw_threads < 4 {
            eprintln!(
                "warning: P = 4 speedup is {p4_speedup:.2}x (goal >= {assert_p4}), but this \
                 host has only {hw_threads} hardware thread(s) — 4 ranks time-share cores, so \
                 the goal is unattainable here; skipping the assertion"
            );
        } else {
            assert!(
                p4_speedup >= assert_p4,
                "P = 4 speedup {p4_speedup:.2}x is below the required {assert_p4}x \
                 on a {hw_threads}-thread host"
            );
            eprintln!("P = 4 speedup {p4_speedup:.2}x meets the {assert_p4}x goal");
        }
    }

    if assert_soa > 0.0 {
        // Both sides of this ratio come from the same single-threaded
        // run on the same host, so unlike the P = 4 gate there is no
        // hardware-thread caveat.
        assert!(
            soa_ratio >= assert_soa,
            "SoA force-path speedup {soa_ratio:.2}x over the half-shell baseline is below \
             the required {assert_soa}x (soa {soa_speedup:.2}x, verlet replay \
             {verlet_speedup:.2}x)"
        );
        eprintln!("SoA force-path speedup {soa_ratio:.2}x meets the {assert_soa}x goal");
    }

    if assert_p9_ghost > 0.0 {
        // Byte counts are deterministic, so this gate has no
        // hardware-thread caveat: a regression is a code change.
        let p9 = rows.iter().find(|r| r.p == 9).expect("P = 9 row present");
        let ratio = ghost_ratio(&p9.wire);
        assert!(
            ratio >= assert_p9_ghost,
            "P = 9 ghost bytes-on-wire ratio {ratio:.2}x is below the required \
             {assert_p9_ghost}x ({} B shipped vs {} B full-frame baseline)",
            p9.wire.ghost,
            p9.wire.ghost_baseline
        );
        eprintln!("P = 9 ghost wire ratio {ratio:.2}x meets the {assert_p9_ghost}x goal");
    }

    if assert_hetero > 0.0 {
        // The imbalance figures come from modelled virtual step times,
        // so like the ghost-byte gate this one has no hardware caveat:
        // a regression is a code change.
        assert!(
            hetero_gain >= assert_hetero,
            "speed-aware DLB time-imbalance gain {hetero_gain:.2}x is below the \
             required {assert_hetero}x (imbalance {imb_time:.3} speed-aware vs \
             {imb_work:.3} work-based)"
        );
        eprintln!("hetero time-imbalance gain {hetero_gain:.2}x meets the {assert_hetero}x goal");
    }
}

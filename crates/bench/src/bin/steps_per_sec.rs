//! `steps-per-sec` — end-to-end throughput harness for the half-shell
//! force kernel, writing machine-readable results to `BENCH_force.json`.
//!
//! Two measurements:
//!
//! 1. **Force phase in isolation** — the seed's full-shell 27-offset pass
//!    (`pcdlb_bench::full_shell_forces`, each pair evaluated from both
//!    ends) against the production 13-offset half-shell pass
//!    (`pcdlb_md::serial::compute_forces_half_shell`) on the same
//!    paper-density gas grid. Both book identical full-shell
//!    `WorkCounters`, so checks/sec are directly comparable; the reported
//!    `speedup` is the headline number (target ≥ 1.6×).
//! 2. **Whole steps per second** — the serial reference and the SPMD
//!    simulator on 2×2 and 3×3 PE grids (ranks are threads; on a
//!    single-core host the parallel rows measure protocol overhead, not
//!    speedup — see README).
//!
//! Usage: `cargo run --release -p pcdlb-bench --bin steps_per_sec`
//! (options: `--nc`, `--density`, `--iters`, `--steps`, `--out`).

use std::fmt::Write as _;
use std::time::Instant;

use pcdlb_bench::{full_shell_forces, Args};
use pcdlb_md::force::ExternalPull;
use pcdlb_md::serial::compute_forces_half_shell;
use pcdlb_md::{init, CellGrid, LennardJones, PairKernel, Vec3};
use pcdlb_sim::{run, serial_sim, RunConfig};

/// One kernel's timing over `iters` repeated full force passes.
struct KernelTiming {
    seconds_per_call: f64,
    pair_checks: u64,
    checks_per_sec: f64,
}

fn time_kernel<F: FnMut() -> u64>(iters: u64, mut pass: F) -> KernelTiming {
    // Warm-up pass (also yields the per-call pair count).
    let pair_checks = pass();
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..iters {
        sink = sink.wrapping_add(pass());
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let seconds_per_call = secs / iters as f64;
    KernelTiming {
        seconds_per_call,
        pair_checks,
        checks_per_sec: pair_checks as f64 / seconds_per_call,
    }
}

/// One whole-simulation throughput row.
struct StepRow {
    mode: &'static str,
    p: usize,
    steps: u64,
    seconds: f64,
    pair_checks: u64,
}

fn json_row(out: &mut String, row: &StepRow) {
    let sps = row.steps as f64 / row.seconds;
    let cps = row.pair_checks as f64 / row.seconds;
    let _ = write!(
        out,
        "    {{ \"mode\": \"{}\", \"p\": {}, \"steps\": {}, \"seconds\": {:.6}, \
         \"steps_per_sec\": {:.3}, \"pair_checks_per_sec\": {:.3e} }}",
        row.mode, row.p, row.steps, row.seconds, sps, cps
    );
}

fn main() {
    let args = Args::parse();
    // nc must divide evenly onto every torus side used below (1, 2, 3).
    let nc = args.get_usize("nc", 12);
    let density = args.get_f64("density", 0.256);
    let iters = args.get_u64("iters", 20);
    let steps = args.get_u64("steps", 30);
    let out_path = args.get("out", "BENCH_force.json").to_string();

    // --- 1. Force phase: full-shell baseline vs half-shell kernel. ---
    let box_len = 2.56 * nc as f64;
    let n = (density * box_len.powi(3)).round() as usize;
    let mut ps = init::simple_cubic(n, box_len);
    init::maxwell_boltzmann(&mut ps, 0.722, 1);
    let mut grid = CellGrid::new(nc, box_len);
    for p in ps {
        grid.insert(p);
    }
    grid.canonicalize();
    let kernel = PairKernel::new(LennardJones::paper());

    let mut forces: Vec<Vec3> = Vec::new();
    let full = time_kernel(iters, || {
        full_shell_forces(&grid, &kernel, &mut forces).pair_checks
    });
    let half = time_kernel(iters, || {
        compute_forces_half_shell(&grid, &kernel, &ExternalPull::None, &mut forces).pair_checks
    });
    assert_eq!(
        full.pair_checks, half.pair_checks,
        "work accounting diverged between kernels"
    );
    let speedup = full.seconds_per_call / half.seconds_per_call;
    eprintln!(
        "force phase: N = {n}, nc = {nc}, {} full-shell checks/pass",
        full.pair_checks
    );
    eprintln!(
        "  full-shell {:.3} ms/pass, half-shell {:.3} ms/pass -> speedup {speedup:.2}x",
        full.seconds_per_call * 1e3,
        half.seconds_per_call * 1e3
    );

    // --- 2. Whole steps/sec: serial vs 2×2 vs 3×3. ---
    let mk_cfg = |p: usize| {
        let mut cfg = RunConfig::new(n, nc, p, density);
        cfg.steps = steps;
        cfg.dlb = p >= 9; // DLB needs a torus side ≥ 3
        cfg.seed = 1;
        cfg
    };
    let mut rows = Vec::new();

    let cfg1 = mk_cfg(1);
    let mut serial = serial_sim(&cfg1);
    let start = Instant::now();
    let mut serial_checks = 0u64;
    for _ in 0..steps {
        serial.step();
        serial_checks += serial.last_work().pair_checks;
    }
    rows.push(StepRow {
        mode: "serial",
        p: 1,
        steps,
        seconds: start.elapsed().as_secs_f64(),
        pair_checks: serial_checks,
    });

    for p in [4usize, 9] {
        let cfg = mk_cfg(p);
        let start = Instant::now();
        let report = run(&cfg);
        let seconds = start.elapsed().as_secs_f64();
        rows.push(StepRow {
            mode: "spmd",
            p,
            steps,
            seconds,
            pair_checks: report.records.iter().map(|r| r.pair_checks).sum(),
        });
    }
    for r in &rows {
        eprintln!(
            "{:>6} P={}: {:.2} steps/sec",
            r.mode,
            r.p,
            r.steps as f64 / r.seconds
        );
    }

    // --- Emit BENCH_force.json (hand-rolled; no serde in the workspace). ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"nc\": {nc}, \"density\": {density}, \"n_particles\": {n}, \
         \"iters\": {iters}, \"steps\": {steps} }},"
    );
    json.push_str("  \"force_phase\": {\n");
    let _ = writeln!(
        json,
        "    \"full_shell\": {{ \"seconds_per_call\": {:.6e}, \"pair_checks_per_call\": {}, \
         \"checks_per_sec\": {:.3e} }},",
        full.seconds_per_call, full.pair_checks, full.checks_per_sec
    );
    let _ = writeln!(
        json,
        "    \"half_shell\": {{ \"seconds_per_call\": {:.6e}, \"pair_checks_per_call\": {}, \
         \"checks_per_sec\": {:.3e} }},",
        half.seconds_per_call, half.pair_checks, half.checks_per_sec
    );
    let _ = writeln!(json, "    \"speedup\": {speedup:.3}");
    json.push_str("  },\n");
    json.push_str("  \"steps_per_sec\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_row(&mut json, row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

//! `pcdlb-bench` — the paper's evaluation harness.
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index): `fig5`, `fig6`, `fig9`, `fig10`, `table1`, plus the `shapes`
//! and `dlb_freq` ablations. Each prints the same rows/series the paper
//! reports, in plain gnuplot-friendly columns.
//!
//! Scaling: the default invocations are sized to finish on a laptop-class
//! single-core host in minutes; `--scale paper` runs the full paper
//! parameters (hours). `EXPERIMENTS.md` records which scale produced the
//! committed numbers. The paper reached high particle concentration by
//! running a supercooled gas for ~10⁴ steps; by default the harness
//! drives concentration with the central-pull substitution
//! (`--pull 0` + `--steps 10000` restores the paper's natural
//! condensation; see DESIGN.md).

use std::collections::BTreeMap;

use pcdlb_core::boundary::BoundaryDetector;
use pcdlb_core::theory;
use pcdlb_md::cells::{CellGrid, NEIGHBOR_OFFSETS_27};
use pcdlb_md::force::{PairKernel, WorkCounters};
use pcdlb_md::Vec3;
use pcdlb_sim::{run, RunConfig};

/// Minimal `--key value` / `--flag` argument parser for the experiment
/// binaries (no CLI dependency in the approved crate list).
#[derive(Debug, Default)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parse `std::env::args`, treating `--key value` as a pair and a
    /// trailing/bare `--flag` as `flag=true`.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::from_slice(&argv)
    }

    /// Parse from a slice (testable).
    pub fn from_slice(argv: &[String]) -> Self {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let key = a.trim_start_matches('-').to_string();
            assert!(
                a.starts_with("--"),
                "unexpected argument `{a}` (use --key value)"
            );
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                map.insert(key, argv[i + 1].clone());
                i += 2;
            } else {
                map.insert(key, "true".to_string());
                i += 1;
            }
        }
        Self { map }
    }

    /// String value with default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.map.get(key).map(String::as_str).unwrap_or(default)
    }

    /// `f64` value with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.map
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} wants a number, got `{v}`"))
            })
            .unwrap_or(default)
    }

    /// `u64` value with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.map
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} wants an integer, got `{v}`"))
            })
            .unwrap_or(default)
    }

    /// `usize` value with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_u64(key, default as u64) as usize
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key, "false") == "true"
    }
}

/// Print a column header with a `#` prefix (gnuplot comment convention).
pub fn print_header(cols: &[&str]) {
    println!("# {}", cols.join("\t"));
}

/// The pre-half-shell force pass, kept as the benchmark baseline: every
/// home cell runs the directed kernel against all 27 neighbour images, so
/// each interacting pair is evaluated twice (once from each end). The
/// production path (`pcdlb_md::serial::compute_forces_half_shell` and the
/// SPMD simulators) visits each pair once via the canonical 13-offset half
/// shell; `WorkCounters` come out identical because the half-shell kernel
/// books its single evaluation as two directed checks.
pub fn full_shell_forces(
    grid: &CellGrid,
    kernel: &PairKernel,
    forces: &mut Vec<Vec3>,
) -> WorkCounters {
    let mut work = WorkCounters::default();
    forces.clear();
    forces.resize(grid.num_particles(), Vec3::ZERO);
    for idx in 0..grid.total_cells() {
        let hr = grid.cell_range(idx);
        if hr.is_empty() {
            continue;
        }
        let home = grid.coord_of(idx);
        let targets = grid.cell_by_index(idx);
        for offset in NEIGHBOR_OFFSETS_27 {
            let (ncell, shift) = grid.wrap_neighbor(home, offset);
            let neighbors = grid.cell(ncell);
            if neighbors.is_empty() {
                continue;
            }
            kernel.accumulate(
                targets,
                &mut forces[hr.clone()],
                neighbors,
                shift,
                &mut work,
            );
        }
    }
    work
}

/// One boundary-experiment result for a `(P, m, ρ)` cell.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryPoint {
    /// PE count.
    pub p: usize,
    /// Tile size.
    pub m: usize,
    /// Reduced density.
    pub density: f64,
    /// Boundary step found by the detector.
    pub step: u64,
    /// Concentration factor at the boundary.
    pub n: f64,
    /// Concentration ratio `C₀/C` at the boundary.
    pub c0_over_c: f64,
    /// Theoretical bound `f(m, n)` at that `n`.
    pub theory: f64,
}

impl BoundaryPoint {
    /// The paper's E/T ratio for this point.
    pub fn e_over_t(&self) -> f64 {
        self.c0_over_c / self.theory
    }
}

/// Find the experimental boundary step index of a run (paper Sec. 4.2).
///
/// Detection runs on the `Fave`-normalised spread `(Fmax − Fmin)/Fave`:
/// under a concentration driver the *total* work grows even while
/// perfectly balanced, so the raw difference would drift upward without
/// any loss of balance. The flat-segment minimum skips the settling phase
/// in which DLB is still spreading the initial lattice imbalance.
pub fn detect_boundary_index(report: &pcdlb_sim::RunReport) -> Option<usize> {
    let series: Vec<f64> = report
        .records
        .iter()
        .map(|r| (r.f_max - r.f_min) / r.f_ave.max(1e-300))
        .collect();
    let detector = BoundaryDetector {
        min_flat: 200,
        min_rise: 100,
        ..BoundaryDetector::default()
    };
    detector.detect(&series).map(|b| b.index)
}

/// Run one boundary experiment: a DLB run on `(P, m, ρ)` whose
/// concentration is driven at `pull` for `steps`, with the experimental
/// boundary detected from the `Fmax − Fmin` series (paper Sec. 4.2).
/// Returns `None` if the imbalance never starts a significant rise within
/// the budget (the DLB limit was not reached).
pub fn measure_boundary(
    p: usize,
    m: usize,
    density: f64,
    steps: u64,
    pull: f64,
    seed: u64,
) -> Option<BoundaryPoint> {
    let mut cfg = RunConfig::from_p_m_density(p, m, density);
    cfg.steps = steps;
    cfg.dlb = true;
    cfg.central_pull = pull;
    // Corner hotspot: concentrates the gas onto one corner of the PE grid
    // so the DLB limit is approached quasi-statically. At high densities
    // the trajectory can saturate below the bound — DLB then stays
    // effective for the whole run and no boundary exists (reported as
    // such), which the paper's natural condensation avoided by reaching
    // higher concentration factors n.
    cfg.pull_corner = true;
    cfg.dlb_min_gain = 0.05; // suppress churn on noise-level imbalance
    cfg.seed = seed;
    let report = run(&cfg);
    let idx = detect_boundary_index(&report)?;
    let rec = &report.records[idx];
    let n = rec.n_factor;
    Some(BoundaryPoint {
        p,
        m,
        density,
        step: rec.step,
        n,
        c0_over_c: rec.c0_over_c,
        theory: theory::upper_bound(m, n),
    })
}

/// Average boundary points over seeds (the paper averages ten runs per
/// point); `None` when no seed produced a detection.
pub fn measure_boundary_averaged(
    p: usize,
    m: usize,
    density: f64,
    steps: u64,
    pull: f64,
    seeds: &[u64],
) -> Option<BoundaryPoint> {
    let pts: Vec<BoundaryPoint> = seeds
        .iter()
        .filter_map(|&s| measure_boundary(p, m, density, steps, pull, s))
        .collect();
    if pts.is_empty() {
        return None;
    }
    let k = pts.len() as f64;
    let n = pts.iter().map(|b| b.n).sum::<f64>() / k;
    let c0 = pts.iter().map(|b| b.c0_over_c).sum::<f64>() / k;
    Some(BoundaryPoint {
        p,
        m,
        density,
        step: (pts.iter().map(|b| b.step).sum::<u64>() as f64 / k) as u64,
        n,
        c0_over_c: c0,
        theory: theory::upper_bound(m, n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_slice(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args(&["--steps", "100", "--paper", "--pull", "0.05"]);
        assert_eq!(a.get_u64("steps", 1), 100);
        assert!(a.flag("paper"));
        assert!(!a.flag("other"));
        assert_eq!(a.get_f64("pull", 0.0), 0.05);
        assert_eq!(a.get("scale", "small"), "small");
    }

    #[test]
    #[should_panic(expected = "wants a number")]
    fn bad_number_rejected() {
        args(&["--pull", "abc"]).get_f64("pull", 0.0);
    }

    #[test]
    fn full_shell_baseline_matches_half_shell_kernel() {
        // The benchmark baseline must compute the same physics and book
        // the same full-shell work units as the production kernel, or the
        // measured speedup is meaningless.
        use pcdlb_md::force::ExternalPull;
        use pcdlb_md::{init, LennardJones};

        let box_len: f64 = 2.56 * 5.0;
        let n = (0.256 * box_len.powi(3)) as usize;
        let mut ps = init::simple_cubic(n, box_len);
        init::maxwell_boltzmann(&mut ps, 0.722, 7);
        let mut grid = CellGrid::new(5, box_len);
        for p in ps {
            grid.insert(p);
        }
        grid.canonicalize();
        let kernel = PairKernel::new(LennardJones::paper());

        let mut f_full = Vec::new();
        let w_full = full_shell_forces(&grid, &kernel, &mut f_full);
        let mut f_half = Vec::new();
        let w_half = pcdlb_md::serial::compute_forces_half_shell(
            &grid,
            &kernel,
            &ExternalPull::None,
            &mut f_half,
        );

        assert_eq!(w_full.pair_checks, w_half.pair_checks);
        assert_eq!(w_full.interacting_pairs, w_half.interacting_pairs);
        assert!((w_full.potential - w_half.potential).abs() < 1e-9);
        assert!((w_full.virial - w_half.virial).abs() < 1e-9);
        assert_eq!(f_full.len(), f_half.len());
        for (a, b) in f_full.iter().zip(&f_half) {
            assert!(
                (*a - *b).norm2().sqrt() < 1e-9,
                "forces diverged: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn e_over_t_ratio() {
        let b = BoundaryPoint {
            p: 36,
            m: 2,
            density: 0.256,
            step: 100,
            n: 1.5,
            c0_over_c: 0.3,
            theory: 0.46,
        };
        assert!((b.e_over_t() - 0.3 / 0.46).abs() < 1e-12);
    }
}

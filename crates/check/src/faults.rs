//! The fault-schedule explorer: crash-recovery parity under injected
//! transport faults.
//!
//! `pcdlb-sim`'s recovery loop claims that a run which loses a rank and
//! restarts from the last distributed checkpoint produces **bitwise
//! identical** records and particle state to an uninterrupted run
//! ([`pcdlb_sim::digest::digest_recovery`] parity). A single
//! hand-picked kill site cannot substantiate that claim — the recovery
//! path looks different depending on *where* in the protocol the rank
//! died (mid-migration, inside a collective, during the checkpoint
//! gather itself, before any checkpoint exists). This module sweeps the
//! claim:
//!
//! - **Kill-point sweep**: for every rank of a 2×2 world, kill it at
//!   send-op `0, stride, 2·stride, …` on the first launch and assert
//!   the recovered digest equals the fault-free reference. Op indices
//!   past the rank's send count simply never fire (the run completes on
//!   the first attempt), so the sweep covers the whole run without
//!   needing per-rank send totals.
//! - **Checkpoint-phase kills**: kill each non-root rank at each of its
//!   `CKPT_GATHER` contribution sends ([`FaultPlan::kill_on_tag`]) — the
//!   checkpoint being assembled dies mid-gather, so the relaunch must
//!   fall back to the previous complete one and still restore parity.
//! - **Seeded fault matrix**: [`FaultPlan::seeded`] schedules drawn per
//!   `(seed, rank)` mix drops, delays, duplicates, truncations and
//!   kills on the first launch. Non-kill faults surface as structured
//!   `CommError` diagnostics on some rank, which tears the world down
//!   exactly like a kill; either way the relaunch must restore parity.
//!
//! Every sweep runs under a global wall-clock timeout: the no-hang
//! guarantee (a dead peer must never leave a survivor blocked forever)
//! is itself part of what is being checked, so a hang is reported as a
//! failure rather than wedging CI.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use pcdlb_core::protocol::tags;
use pcdlb_mp::collectives::ctag;
use pcdlb_mp::fault::splitmix64;
use pcdlb_mp::FaultPlan;
use pcdlb_sim::config::{Lattice, RunConfig};
use pcdlb_sim::{run_with_recovery, run_with_recovery_faulted, RecoveryOptions};

/// What a fault sweep observed.
#[derive(Debug, Clone)]
pub struct FaultSweepOutcome {
    /// [`digest_recovery`](pcdlb_sim::digest::digest_recovery) of the
    /// fault-free reference run every faulted run is compared against.
    pub reference_digest: u64,
    /// Kill-point runs performed (one per `(rank, op)` pair swept).
    pub kill_runs: usize,
    /// Kill-point runs whose kill actually fired (needed > 1 attempt).
    pub kills_fired: usize,
    /// Seeded mixed-fault runs performed.
    pub seeded_runs: usize,
    /// Seeded runs where at least one fault forced a relaunch.
    pub faults_fired: usize,
    /// Checkpoint-phase kill runs performed (one per `(rank, gather)`
    /// pair: each non-root rank killed at each of its `CKPT_GATHER`
    /// contribution sends).
    pub ckpt_runs: usize,
    /// Checkpoint-phase kill runs whose kill actually fired.
    pub ckpt_kills_fired: usize,
    /// Parity or recovery failures (empty when the invariant holds).
    pub violations: Vec<String>,
}

/// The sweep workload: the same small-but-busy 2×2 recovery
/// configuration the `pcdlb-sim` recovery tests use — DDM only (P = 4
/// cannot run DLB), clustered start so migration and ghost traffic are
/// heavy, the thermostat firing mid-run, a checkpoint gathered every 5
/// of 24 steps.
pub fn sweep_config() -> RunConfig {
    let mut cfg = RunConfig::new(216, 4, 4, 0.2);
    cfg.dlb = false;
    cfg.steps = 24;
    cfg.thermostat_interval = 10;
    cfg.lattice = Lattice::Cluster { fill: 0.8 };
    cfg.seed = 11;
    cfg.checkpoint_interval = 5;
    cfg
}

/// Recovery knobs for sweep runs: a tight poll so aborts propagate
/// fast, a watchdog generous enough for a loaded CI machine but short
/// enough that a genuinely wedged receive fails the run promptly, and
/// enough attempts that a multi-rank seeded plan cannot exhaust them.
fn sweep_opts() -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 6,
        poll: Duration::from_millis(2),
        watchdog: Duration::from_secs(10),
    }
}

/// Sweep kill points at the given send-op `stride` and run `seeds`
/// mixed-fault schedules, asserting recovery parity for each.
pub fn fault_sweep(stride: u64, seeds: usize) -> FaultSweepOutcome {
    let stride = stride.max(1);
    let cfg = sweep_config();
    let opts = sweep_opts();
    let mut out = FaultSweepOutcome {
        reference_digest: 0,
        kill_runs: 0,
        kills_fired: 0,
        seeded_runs: 0,
        faults_fired: 0,
        ckpt_runs: 0,
        ckpt_kills_fired: 0,
        violations: Vec::new(),
    };
    let reference = match run_with_recovery(&cfg, &opts) {
        Ok(r) => r,
        Err(e) => {
            out.violations
                .push(format!("fault-free reference run failed: {e}"));
            return out;
        }
    };
    out.reference_digest = reference.digest;
    // A per-rank send-count bound: ranks of this symmetric world send
    // near-identical counts, so mean-plus-margin covers the busiest one;
    // ops past a rank's real count just never fire.
    let max_op = reference.report.msgs_sent / cfg.p as u64 + cfg.steps;

    for rank in 0..cfg.p {
        for op in (0..max_op).step_by(stride as usize) {
            let res = run_with_recovery_faulted(&cfg, &opts, |attempt, r| {
                (attempt == 0 && r == rank).then(|| FaultPlan::kill_at(op))
            });
            out.kill_runs += 1;
            match res {
                Ok(o) => {
                    if o.attempts > 1 {
                        out.kills_fired += 1;
                    }
                    if o.digest != reference.digest {
                        out.violations.push(format!(
                            "kill(rank {rank}, op {op}): digest {:#018x} != reference {:#018x} after {} attempt(s)",
                            o.digest, reference.digest, o.attempts
                        ));
                    }
                }
                Err(e) => out
                    .violations
                    .push(format!("kill(rank {rank}, op {op}): unrecovered: {e}")),
            }
        }
    }

    // Checkpoint-phase kills: dying *inside* the CKPT_GATHER collective is
    // the nastiest spot for recovery — the checkpoint being assembled is
    // lost mid-gather and the relaunch must fall back to the previous one.
    // Kill each non-root rank at each of its checkpoint-contribution sends
    // (rank 0 only receives in a gather, so it has no such send op; its
    // checkpoint-phase deaths are covered by the plain kill-point sweep).
    let ckpt_wire_tag = ctag(tags::CKPT_GATHER, 0);
    let ckpt_gathers = cfg
        .steps
        .saturating_sub(1)
        .checked_div(cfg.checkpoint_interval)
        .unwrap_or(0);
    for rank in 1..cfg.p {
        for nth in 0..ckpt_gathers {
            let res = run_with_recovery_faulted(&cfg, &opts, |attempt, r| {
                (attempt == 0 && r == rank).then(|| FaultPlan::kill_on_tag(ckpt_wire_tag, nth))
            });
            out.ckpt_runs += 1;
            match res {
                Ok(o) => {
                    if o.attempts > 1 {
                        out.ckpt_kills_fired += 1;
                    }
                    if o.digest != reference.digest {
                        out.violations.push(format!(
                            "ckpt-kill(rank {rank}, gather {nth}): digest {:#018x} != reference {:#018x} after {} attempt(s)",
                            o.digest, reference.digest, o.attempts
                        ));
                    }
                }
                Err(e) => out.violations.push(format!(
                    "ckpt-kill(rank {rank}, gather {nth}): unrecovered: {e}"
                )),
            }
        }
    }

    for seed in 1..=seeds as u64 {
        let res = run_with_recovery_faulted(&cfg, &opts, |attempt, rank| {
            if attempt > 0 {
                return None;
            }
            // Derive each rank's plan seed from the matrix seed with the
            // same splitmix64 stream seeded plans use internally.
            let mut state = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rank as u64 + 1);
            let plan = FaultPlan::seeded(splitmix64(&mut state), max_op, 2);
            (!plan.is_empty()).then_some(plan)
        });
        out.seeded_runs += 1;
        match res {
            Ok(o) => {
                if o.attempts > 1 {
                    out.faults_fired += 1;
                }
                if o.digest != reference.digest {
                    out.violations.push(format!(
                        "seeded(seed {seed}): digest {:#018x} != reference {:#018x} after {} attempt(s)",
                        o.digest, reference.digest, o.attempts
                    ));
                }
            }
            Err(e) => out
                .violations
                .push(format!("seeded(seed {seed}): unrecovered: {e}")),
        }
    }
    out
}

/// Run `f` on a worker thread, failing with a diagnostic if it does not
/// finish within `timeout` — the no-hang backstop for sweep runs.
pub(crate) fn run_under_timeout<T: Send + 'static>(
    timeout: Duration,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<T, String> {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(timeout).map_err(|_| {
        format!(
            "{what} exceeded its global {}s timeout — a surviving rank is hung",
            timeout.as_secs()
        )
    })
}

/// [`fault_sweep`] under a global wall-clock `timeout`.
pub fn fault_sweep_with_timeout(
    stride: u64,
    seeds: usize,
    timeout: Duration,
) -> Result<FaultSweepOutcome, String> {
    run_under_timeout(timeout, "fault sweep", move || fault_sweep(stride, seeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_holds_recovery_parity() {
        // A coarse stride keeps this a smoke test; the fine-grained sweep
        // is `pcdlb-check faults` (CI's fault-matrix job).
        let out = fault_sweep(97, 2);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert!(out.kill_runs >= 2 * 4, "at least two points per rank");
        assert!(out.kills_fired > 0, "the low kill points must fire");
        assert_eq!(out.seeded_runs, 2);
        // 3 non-root ranks × 4 checkpoint gathers, every one a real kill.
        assert_eq!(out.ckpt_runs, 3 * 4);
        assert_eq!(
            out.ckpt_kills_fired, out.ckpt_runs,
            "each rank sends exactly one contribution per gather, so every checkpoint-phase kill must fire"
        );
        assert_ne!(out.reference_digest, 0);
    }

    #[test]
    fn the_global_timeout_reports_a_hang() {
        let err = run_under_timeout(Duration::from_millis(20), "stall probe", || {
            thread::sleep(Duration::from_millis(400));
        })
        .expect_err("must time out");
        assert!(err.contains("stall probe"), "{err}");
        assert!(err.contains("timeout"), "{err}");
    }
}

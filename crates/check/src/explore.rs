//! The interleaving explorer: run the simulator under many
//! message-delivery orders and compare state digests.
//!
//! Two exploration modes feed off each other:
//!
//! - **Bounded DFS** over replay prefixes: run once with empty prefixes
//!   (lowest-source-first delivery), then for every observed choice point
//!   with more than one buffered candidate, fork a run that takes each
//!   alternative there. This systematically flips early delivery
//!   decisions the way a DPOR-style checker would.
//! - **Seeded breadth**: additional runs under per-rank pseudo-random
//!   policies, covering deep interleavings DFS cannot reach within its
//!   run budget.
//!
//! Because the *set* of physically-arrived messages at a choice point
//! depends on real thread timing, replay is best-effort (see
//! `pcdlb_mp::check`); runs are therefore deduplicated by their observed
//! traces, and the guarantee checked is: **every observed delivery order
//! yields the same digest**.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use pcdlb_mp::check::{ChoiceTrace, DeliveryPolicy, ReplayPolicy, SeededPolicy, TraceHandle};
use pcdlb_sim::config::RunConfig;
use pcdlb_sim::digest::Fnv1a;
use pcdlb_sim::driver::run_digest_with_policy;

/// What an exploration observed.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Total runs performed.
    pub runs: usize,
    /// Distinct digests seen — `len() == 1` means delivery-order
    /// independent over everything explored.
    pub digests: BTreeSet<u64>,
    /// Distinct observed delivery orders (hashes of the per-rank choice
    /// traces).
    pub distinct_orders: usize,
    /// Largest candidate-set size seen at any choice point.
    pub max_arity: usize,
}

/// A factory of per-rank policies for one run.
enum RunKind<'a> {
    Replay(&'a [Vec<usize>]),
    Seeded(u64),
}

/// Run the simulator once under controlled delivery; returns the digest
/// and each rank's observed choice trace.
fn run_once(cfg: &RunConfig, kind: RunKind<'_>) -> (u64, Vec<ChoiceTrace>) {
    let handles: Arc<Mutex<Vec<Option<TraceHandle>>>> = Arc::new(Mutex::new(vec![None; cfg.p]));
    let handles_in = Arc::clone(&handles);
    let digest = run_digest_with_policy(cfg, move |rank| {
        let (policy, handle): (Box<dyn DeliveryPolicy>, TraceHandle) = match kind {
            RunKind::Replay(prefixes) => {
                let (p, h) = ReplayPolicy::new(prefixes.get(rank).cloned().unwrap_or_default());
                (Box::new(p), h)
            }
            RunKind::Seeded(seed) => {
                let (p, h) = SeededPolicy::new(
                    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(rank as u64),
                );
                (Box::new(p), h)
            }
        };
        handles_in.lock().expect("handle table")[rank] = Some(handle);
        policy
    });
    let traces = handles
        .lock()
        .expect("handle table")
        .iter()
        .map(|h| {
            h.as_ref()
                .map(|h| h.lock().expect("trace").clone())
                .unwrap_or_default()
        })
        .collect();
    (digest, traces)
}

/// Order-preserving hash of a full per-rank trace set.
fn trace_hash(traces: &[ChoiceTrace]) -> u64 {
    let mut h = Fnv1a::new();
    for (r, t) in traces.iter().enumerate() {
        h.write_u64(r as u64);
        h.write_u64(t.len() as u64);
        for cp in t {
            h.write_u64(cp.arity as u64);
            h.write_u64(cp.taken as u64);
        }
    }
    h.finish()
}

/// Cap on forks queued from a single run, to keep the frontier bounded.
const MAX_FORKS_PER_RUN: usize = 16;

/// Explore delivery orders of `cfg`: DFS over replay prefixes for up to
/// `dfs_runs` runs, then `seeded_runs` pseudo-random runs.
pub fn explore(cfg: &RunConfig, dfs_runs: usize, seeded_runs: usize) -> ExploreOutcome {
    let mut out = ExploreOutcome {
        runs: 0,
        digests: BTreeSet::new(),
        distinct_orders: 0,
        max_arity: 0,
    };
    let mut orders: BTreeSet<u64> = BTreeSet::new();
    let mut queued: BTreeSet<Vec<Vec<usize>>> = BTreeSet::new();
    let mut stack: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); cfg.p]];
    while let Some(prefixes) = stack.pop() {
        if out.runs >= dfs_runs {
            break;
        }
        let (digest, traces) = run_once(cfg, RunKind::Replay(&prefixes));
        out.runs += 1;
        out.digests.insert(digest);
        orders.insert(trace_hash(&traces));
        let mut forks = 0;
        for (r, trace) in traces.iter().enumerate() {
            for (i, cp) in trace.iter().enumerate() {
                out.max_arity = out.max_arity.max(cp.arity);
                // Fork on multi-candidate choices not already forced by
                // this run's prefix.
                if cp.arity > 1 && i >= prefixes[r].len() && forks < MAX_FORKS_PER_RUN {
                    for alt in 0..cp.arity {
                        if alt == cp.taken {
                            continue;
                        }
                        let mut next = prefixes.clone();
                        next[r] = trace[..i].iter().map(|c| c.taken).collect();
                        next[r].push(alt);
                        if queued.insert(next.clone()) {
                            stack.push(next);
                            forks += 1;
                        }
                    }
                }
            }
        }
    }
    for seed in 0..seeded_runs as u64 {
        let (digest, traces) = run_once(cfg, RunKind::Seeded(seed + 1));
        out.runs += 1;
        out.digests.insert(digest);
        orders.insert(trace_hash(&traces));
        for t in &traces {
            for cp in t {
                out.max_arity = out.max_arity.max(cp.arity);
            }
        }
    }
    out.distinct_orders = orders.len();
    out
}

/// The 2×2 PE configuration the determinism acceptance check runs on:
/// small enough to explore many orders quickly, with migration, ghost
/// exchange, thermostat collectives and stats traffic all active.
///
/// `overlap` is left at its default (on), so every explored delivery
/// order races ghost-payload arrival against the receiver's interior
/// force computation — the overlapped schedule's new hazard surface.
pub fn config_2x2(steps: u64) -> RunConfig {
    let mut cfg = RunConfig::from_p_m_density(4, 1, 0.3);
    // A 2×2 torus has no distinct directional roles, so DLB is off — the
    // paper's protocol starts at side 3; delivery-order independence of
    // the remaining phases is exactly what this config checks.
    cfg.dlb = false;
    cfg.steps = steps;
    cfg.thermostat_interval = 2;
    cfg.seed = 7;
    cfg
}

/// [`config_2x2`] with the overlapped schedule disabled: the sequenced
/// recv-then-compute step. Exploring both and comparing digests checks
/// that no delivery order can make the overlap observable.
pub fn config_2x2_sequenced(steps: u64) -> RunConfig {
    let mut cfg = config_2x2(steps);
    cfg.overlap = false;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_hash_distinguishes_orders() {
        use pcdlb_mp::check::ChoicePoint;
        let a = vec![vec![ChoicePoint { arity: 2, taken: 0 }]];
        let b = vec![vec![ChoicePoint { arity: 2, taken: 1 }]];
        assert_ne!(trace_hash(&a), trace_hash(&b));
        assert_eq!(trace_hash(&a), trace_hash(&a.clone()));
    }

    #[test]
    fn explore_smoke_on_tiny_run() {
        let cfg = config_2x2(2);
        let out = explore(&cfg, 3, 2);
        assert_eq!(out.runs, 5);
        assert_eq!(
            out.digests.len(),
            1,
            "digest must not depend on delivery order"
        );
    }

    #[test]
    fn overlapped_and_sequenced_schedules_agree_under_exploration() {
        let overlapped = explore(&config_2x2(2), 3, 2);
        let sequenced = explore(&config_2x2_sequenced(2), 3, 2);
        assert_eq!(overlapped.digests.len(), 1);
        assert_eq!(sequenced.digests.len(), 1);
        assert_eq!(
            overlapped.digests, sequenced.digests,
            "overlapping interior compute with ghost delivery changed the digest"
        );
    }
}

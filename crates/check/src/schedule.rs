//! Extraction of the per-step SPMD send/recv schedule.
//!
//! The square-pillar simulator's step (`pcdlb-sim`'s `pe` module) has a
//! fixed communication structure per phase: sends to the distinct torus
//! 8-neighbours in ascending rank order, then the matching receives in the
//! same order; collectives are gathers and binomial-tree broadcasts over
//! namespaced tags. This module re-derives that structure from the same
//! sources the simulator uses — [`Torus2d::distinct_neighbors8`] and
//! [`tags::TAG_TABLE`] — so the verifier and the simulator agree on the
//! wire protocol by construction, not by transcription.
//!
//! The one data-dependent part is the DLB cell transfer (`CELL_XFER`):
//! which columns move depends on runtime loads. The schedule is therefore
//! parameterised over a *decision scenario* — a set of `(from, to)`
//! transfers — and the verifier sweeps representative scenarios (none,
//! every single legal transfer, dense simultaneous transfers).

use pcdlb_core::protocol::tags::{self, CommPhase};
use pcdlb_mp::collectives::ctag;
use pcdlb_mp::Torus2d;

/// One point-to-point operation of the schedule. Tags are *wire* tags:
/// collective rounds already carry their namespaced
/// [`ctag`](pcdlb_mp::collectives::ctag) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A non-blocking send to `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Wire tag.
        tag: u64,
    },
    /// A blocking receive from `from`.
    Recv {
        /// Source rank.
        from: usize,
        /// Wire tag.
        tag: u64,
    },
}

/// An [`Op`] annotated with the phase it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasedOp {
    /// The step phase.
    pub phase: CommPhase,
    /// The operation.
    pub op: Op,
}

/// The full per-step schedule: for each rank, its program-ordered
/// operation sequence.
#[derive(Debug, Clone)]
pub struct StepSchedule {
    /// Number of ranks.
    pub p: usize,
    /// `ranks[r]` is rank `r`'s operation sequence in program order.
    pub ranks: Vec<Vec<PhasedOp>>,
}

/// Which optional parts of the step to include, and the DLB decision
/// scenario to instantiate.
#[derive(Debug, Clone, Default)]
pub struct ScheduleOpts {
    /// Include the DLB load/decision exchanges.
    pub dlb: bool,
    /// DLB cell transfers `(from, to)` for this step, in the simulator's
    /// apply order (sorted by `from`; one decision per sending rank).
    pub decisions: Vec<(usize, usize)>,
    /// Include the thermostat gather + broadcast.
    pub thermostat: bool,
    /// Include the stats gather.
    pub stats: bool,
    /// Include the periodic distributed-checkpoint gather.
    pub checkpoint: bool,
    /// Include the periodic invariant-sentinel gather.
    pub sentinel: bool,
    /// Include the end-of-run snapshot gather.
    pub snapshot: bool,
}

impl ScheduleOpts {
    /// Everything on, no transfers — the shape of a typical DLB step.
    pub fn full() -> Self {
        Self {
            dlb: true,
            decisions: Vec::new(),
            thermostat: true,
            stats: true,
            checkpoint: true,
            sentinel: true,
            snapshot: true,
        }
    }
}

/// Build the per-step schedule for a `side × side` torus.
pub fn step_schedule(side: usize, opts: &ScheduleOpts) -> StepSchedule {
    let torus = Torus2d::new(side, side);
    let p = torus.len();
    let mut decisions = opts.decisions.clone();
    decisions.sort_unstable_by_key(|&(from, _)| from);
    let mut ranks = Vec::with_capacity(p);
    for r in 0..p {
        let mut ops: Vec<PhasedOp> = Vec::new();
        let nbrs = torus.distinct_neighbors8(r);
        // Phase: migration — round 1 of the coalesced step message
        // (migrants + DLB load when due): sends to all distinct
        // neighbours (ascending), then the matching receives in the same
        // order. Per-(src, dst, tag) FIFO keeps round 1 and round 2 of
        // the shared STEP_FRAME tag matched.
        neighbourhood_exchange(&mut ops, CommPhase::Migrate, r, &nbrs, tags::STEP_FRAME);
        if opts.dlb {
            neighbourhood_exchange(&mut ops, CommPhase::DlbDecision, r, &nbrs, tags::DECISION);
            // Cell transfers: senders first, then receivers, each walking
            // the decision list in `from` order (the simulator's order).
            for &(from, to) in &decisions {
                if from == r {
                    ops.push(PhasedOp {
                        phase: CommPhase::DlbCellXfer,
                        op: Op::Send {
                            to,
                            tag: tags::CELL_XFER,
                        },
                    });
                }
            }
            for &(from, to) in &decisions {
                if to == r {
                    ops.push(PhasedOp {
                        phase: CommPhase::DlbCellXfer,
                        op: Op::Recv {
                            from,
                            tag: tags::CELL_XFER,
                        },
                    });
                }
            }
        }
        // Phase: ghosts — round 2 of the coalesced step message.
        neighbourhood_exchange(&mut ops, CommPhase::Ghost, r, &nbrs, tags::STEP_FRAME);
        if opts.thermostat {
            gather_ops(&mut ops, CommPhase::Thermostat, p, r, tags::KE_GATHER);
            bcast_ops(&mut ops, CommPhase::Thermostat, p, r, tags::KE_BCAST);
        }
        if opts.stats {
            gather_ops(&mut ops, CommPhase::Stats, p, r, tags::STATS);
        }
        if opts.checkpoint {
            gather_ops(&mut ops, CommPhase::Checkpoint, p, r, tags::CKPT_GATHER);
        }
        if opts.sentinel {
            gather_ops(&mut ops, CommPhase::Sentinel, p, r, tags::SENTINEL);
        }
        if opts.snapshot {
            gather_ops(&mut ops, CommPhase::Snapshot, p, r, tags::SNAPSHOT);
        }
        ranks.push(ops);
    }
    StepSchedule { p, ranks }
}

/// The simulator's neighbourhood pattern: send one message to every
/// distinct 8-neighbour (ascending rank), then receive one from each in
/// the same order.
fn neighbourhood_exchange(
    ops: &mut Vec<PhasedOp>,
    phase: CommPhase,
    _rank: usize,
    nbrs: &[usize],
    tag: u64,
) {
    for &nb in nbrs {
        ops.push(PhasedOp {
            phase,
            op: Op::Send { to: nb, tag },
        });
    }
    for &nb in nbrs {
        ops.push(PhasedOp {
            phase,
            op: Op::Recv { from: nb, tag },
        });
    }
}

/// Rank `rank`'s operations in `collectives::gather` over `p` ranks:
/// rank 0 receives from 1..p in order; everyone else sends to 0. Wire
/// tags follow the collective namespacing rule.
pub fn gather_ops(ops: &mut Vec<PhasedOp>, phase: CommPhase, p: usize, rank: usize, tag: u64) {
    if rank == 0 {
        for src in 1..p {
            ops.push(PhasedOp {
                phase,
                op: Op::Recv {
                    from: src,
                    tag: ctag(tag, 0),
                },
            });
        }
    } else {
        ops.push(PhasedOp {
            phase,
            op: Op::Send {
                to: 0,
                tag: ctag(tag, 0),
            },
        });
    }
}

/// Rank `rank`'s operations in `collectives::bcast` from rank 0 over `p`
/// ranks: the binomial tree, descending step, round = step.
pub fn bcast_ops(ops: &mut Vec<PhasedOp>, phase: CommPhase, p: usize, rank: usize, tag: u64) {
    let mut top = 1usize;
    while top < p {
        top <<= 1;
    }
    let mut step = top >> 1;
    while step >= 1 {
        if rank.is_multiple_of(2 * step) {
            let dst = rank + step;
            if dst < p {
                ops.push(PhasedOp {
                    phase,
                    op: Op::Send {
                        to: dst,
                        tag: ctag(tag, step as u64),
                    },
                });
            }
        } else if rank % (2 * step) == step {
            ops.push(PhasedOp {
                phase,
                op: Op::Recv {
                    from: rank - step,
                    tag: ctag(tag, step as u64),
                },
            });
        }
        step >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sends_in(ops: &[PhasedOp], phase: CommPhase) -> Vec<Op> {
        ops.iter()
            .filter(|o| o.phase == phase && matches!(o.op, Op::Send { .. }))
            .map(|o| o.op)
            .collect()
    }

    #[test]
    fn migrate_phase_is_one_message_per_distinct_neighbour() {
        let s = step_schedule(3, &ScheduleOpts::default());
        assert_eq!(s.p, 9);
        for (r, ops) in s.ranks.iter().enumerate() {
            let sends = sends_in(ops, CommPhase::Migrate);
            let nbrs = Torus2d::new(3, 3).distinct_neighbors8(r);
            assert_eq!(sends.len(), nbrs.len());
            for (op, nb) in sends.iter().zip(&nbrs) {
                assert_eq!(
                    *op,
                    Op::Send {
                        to: *nb,
                        tag: tags::STEP_FRAME
                    }
                );
            }
        }
    }

    #[test]
    fn small_torus_dedups_neighbours() {
        // On 2×2 every rank has only 3 distinct neighbours.
        let s = step_schedule(2, &ScheduleOpts::default());
        for ops in &s.ranks {
            assert_eq!(sends_in(ops, CommPhase::Migrate).len(), 3);
        }
    }

    #[test]
    fn decisions_generate_cell_xfer_pairs() {
        let opts = ScheduleOpts {
            dlb: true,
            decisions: vec![(4, 0), (5, 4)],
            ..Default::default()
        };
        let s = step_schedule(3, &opts);
        let xfer = |r: usize| -> Vec<Op> {
            s.ranks[r]
                .iter()
                .filter(|o| o.phase == CommPhase::DlbCellXfer)
                .map(|o| o.op)
                .collect()
        };
        assert_eq!(
            xfer(4),
            vec![
                Op::Send {
                    to: 0,
                    tag: tags::CELL_XFER
                },
                Op::Recv {
                    from: 5,
                    tag: tags::CELL_XFER
                }
            ]
        );
        assert_eq!(
            xfer(0),
            vec![Op::Recv {
                from: 4,
                tag: tags::CELL_XFER
            }]
        );
        assert_eq!(
            xfer(5),
            vec![Op::Send {
                to: 4,
                tag: tags::CELL_XFER
            }]
        );
    }

    #[test]
    fn bcast_ops_mirror_the_binomial_tree() {
        // p = 5, top = 8: rank 0 sends to 4, 2, 1; rank 3 receives from 2.
        let mut ops = Vec::new();
        bcast_ops(&mut ops, CommPhase::Thermostat, 5, 0, tags::KE_BCAST);
        let dsts: Vec<usize> = ops
            .iter()
            .map(|o| match o.op {
                Op::Send { to, .. } => to,
                _ => panic!("root only sends"),
            })
            .collect();
        assert_eq!(dsts, vec![4, 2, 1]);
        let mut r3 = Vec::new();
        bcast_ops(&mut r3, CommPhase::Thermostat, 5, 3, tags::KE_BCAST);
        assert_eq!(
            r3,
            vec![PhasedOp {
                phase: CommPhase::Thermostat,
                op: Op::Recv {
                    from: 2,
                    tag: ctag(tags::KE_BCAST, 1)
                }
            }]
        );
    }
}

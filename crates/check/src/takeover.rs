//! Verification of the degraded-mode survivor-takeover protocol.
//!
//! When a rank dies mid-run, `pcdlb-sim`'s takeover path
//! (`crates/sim/src/takeover.rs`) has a deterministically chosen buddy
//! survivor adopt the dead **virtual rank** and drive both ranks' slots
//! in every communication phase from one OS thread. Three things must
//! hold for that to be sound, and this module checks each:
//!
//! - **The buddy map is well-formed** ([`check_buddy_map`]): total and
//!   deterministic over every grid, never maps a rank to itself, always
//!   lands on an 8-neighbour (the adopter already exchanges with every
//!   rank the adoptee talked to), and preserves virtual-rank coverage —
//!   after one adoption the survivors' role sets still partition
//!   `0..P`.
//! - **The merged dual-role schedule is deadlock-free**
//!   ([`check_merged_schedules`]): folding the dead rank's per-step
//!   operations into its buddy's thread under the simulator's
//!   interleaving rule (point-to-point phases post both roles' sends
//!   before either role receives; gather-shaped phases run whole-role
//!   descending; broadcast halves ascending) must leave every thread
//!   able to run to completion with all channels drained. The
//!   single-thread-two-ranks execution model needs its own checker
//!   ([`run_thread_schedules`]): the static blocking-wait-graph check in
//!   [`crate::verify`] keys receives by *rank*, which no longer equals
//!   *thread* once a thread hosts two ranks.
//! - **Real kill points recover bitwise** ([`takeover_sweep`]): kill
//!   each rank of a 2×2 (DDM-only) and a 3×3 (DLB) world at strided
//!   send ops and assert the run completes — degraded on `n − 1`
//!   threads where the ladder absorbs the death, via full relaunch
//!   where it cannot — with `digest_recovery` bitwise equal to the
//!   fault-free reference. A two-death schedule per config checks the
//!   escalation rung: the second death must fall back to a clean full
//!   relaunch without hanging.

use std::collections::BTreeMap;
use std::time::Duration;

use pcdlb_core::protocol::tags::{self, CommPhase};
use pcdlb_mp::collectives::COLLECTIVE_BIT;
use pcdlb_mp::{FaultPlan, Torus2d};
use pcdlb_sim::config::{Lattice, RunConfig};
use pcdlb_sim::{run_with_takeover, run_with_takeover_faulted, RecoveryOptions};

use crate::faults::run_under_timeout;
use crate::schedule::{step_schedule, Op, PhasedOp, ScheduleOpts, StepSchedule};
use crate::verify::LEGAL_DELTAS;

/// Check the buddy map on every square grid with side `2..=max_side`.
/// Returns human-readable violations (empty for a correct map).
pub fn check_buddy_map(max_side: usize) -> (usize, Vec<String>) {
    let mut checked = 0;
    let mut out = Vec::new();
    for side in 2..=max_side.max(2) {
        let torus = Torus2d::new(side, side);
        let p = torus.len();
        for dead in 0..p {
            checked += 1;
            let buddy = torus.buddy(dead);
            if buddy == dead {
                out.push(format!("side {side}: buddy({dead}) = {dead} (self)"));
                continue;
            }
            if buddy >= p {
                out.push(format!("side {side}: buddy({dead}) = {buddy} out of range"));
                continue;
            }
            if torus.buddy(dead) != buddy {
                out.push(format!("side {side}: buddy({dead}) is not deterministic"));
            }
            if !torus.distinct_neighbors8(dead).contains(&buddy) {
                out.push(format!(
                    "side {side}: buddy({dead}) = {buddy} is not an 8-neighbour — \
                     the adopter would need channels it never opened"
                ));
            }
            // Coverage: after the buddy adopts, the survivors' role sets
            // must still partition the full virtual-rank set.
            let mut roles: Vec<usize> = (0..p).filter(|&r| r != dead).collect();
            roles.push(dead);
            roles.sort_unstable();
            if roles != (0..p).collect::<Vec<usize>>() {
                out.push(format!(
                    "side {side}: adoption of {dead} by {buddy} breaks virtual-rank coverage"
                ));
            }
        }
    }
    (checked, out)
}

fn op_tag(po: &PhasedOp) -> u64 {
    let (Op::Send { tag, .. } | Op::Recv { tag, .. }) = po.op;
    tag
}

/// The pre-namespacing base tag of a collective wire tag.
fn base_tag(wire: u64) -> u64 {
    (wire & !COLLECTIVE_BIT) >> 8
}

fn ops_of<'a>(
    s: &'a StepSchedule,
    v: usize,
    phase: CommPhase,
) -> impl Iterator<Item = PhasedOp> + 'a {
    s.ranks[v]
        .iter()
        .copied()
        .filter(move |po| po.phase == phase)
}

/// Fold a thread's role set into one program-ordered operation sequence
/// under the simulator's dual-role interleaving rule (`step_multi` /
/// `run_roles` in `crates/sim/src/takeover.rs`):
///
/// - point-to-point phases: every role's sends (roles ascending), then
///   every role's receives (roles ascending);
/// - the thermostat: the KE-gather half whole-role *descending* (the
///   non-root role's contribution is posted before the root role starts
///   receiving), the scale-broadcast half ascending (a binomial-tree
///   parent is always a lower rank, so the lower role never waits on its
///   own thread's higher role);
/// - the remaining gather-shaped phases (stats, checkpoint, sentinel,
///   snapshot): whole-role descending.
///
/// With a single role this reproduces the rank's schedule order exactly.
pub fn merge_roles(s: &StepSchedule, roles: &[usize]) -> Vec<(usize, PhasedOp)> {
    let mut out = Vec::new();
    for phase in [
        CommPhase::Migrate,
        CommPhase::DlbDecision,
        CommPhase::DlbCellXfer,
        CommPhase::Ghost,
    ] {
        for &v in roles {
            out.extend(
                ops_of(s, v, phase)
                    .filter(|po| matches!(po.op, Op::Send { .. }))
                    .map(|po| (v, po)),
            );
        }
        for &v in roles {
            out.extend(
                ops_of(s, v, phase)
                    .filter(|po| matches!(po.op, Op::Recv { .. }))
                    .map(|po| (v, po)),
            );
        }
    }
    for &v in roles.iter().rev() {
        out.extend(
            ops_of(s, v, CommPhase::Thermostat)
                .filter(|po| base_tag(op_tag(po)) == tags::KE_GATHER)
                .map(|po| (v, po)),
        );
    }
    for &v in roles {
        out.extend(
            ops_of(s, v, CommPhase::Thermostat)
                .filter(|po| base_tag(op_tag(po)) == tags::KE_BCAST)
                .map(|po| (v, po)),
        );
    }
    for phase in [
        CommPhase::Stats,
        CommPhase::Checkpoint,
        CommPhase::Sentinel,
        CommPhase::Snapshot,
    ] {
        for &v in roles.iter().rev() {
            out.extend(ops_of(s, v, phase).map(|po| (v, po)));
        }
    }
    out
}

/// The degraded world as thread programs: one merged sequence per
/// surviving physical rank (ascending), the buddy's carrying both its
/// own role and the dead rank's.
pub fn merged_thread_schedule(
    s: &StepSchedule,
    dead: usize,
    buddy: usize,
) -> Vec<Vec<(usize, PhasedOp)>> {
    (0..s.p)
        .filter(|&r| r != dead)
        .map(|r| {
            if r == buddy {
                let mut roles = vec![buddy, dead];
                roles.sort_unstable();
                merge_roles(s, &roles)
            } else {
                merge_roles(s, &[r])
            }
        })
        .collect()
}

/// Execute a set of thread programs under the runtime's semantics —
/// sends are non-blocking, a receive blocks until a matching message
/// exists on its `(src, dst, tag)` channel — and report a deadlock or an
/// undrained channel. Executing an operation never disables another, so
/// running each thread as far as it can go, round-robin to a fixpoint,
/// is both sound and complete for this model.
pub fn run_thread_schedules(threads: &[Vec<(usize, PhasedOp)>]) -> Result<(), String> {
    let mut cursor = vec![0usize; threads.len()];
    let mut chan: BTreeMap<(usize, usize, u64), u64> = BTreeMap::new();
    loop {
        let mut progressed = false;
        for (t, ops) in threads.iter().enumerate() {
            while let Some(&(v, po)) = ops.get(cursor[t]) {
                match po.op {
                    Op::Send { to, tag } => {
                        *chan.entry((v, to, tag)).or_insert(0) += 1;
                    }
                    Op::Recv { from, tag } => match chan.get_mut(&(from, v, tag)) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => break,
                    },
                }
                cursor[t] += 1;
                progressed = true;
            }
        }
        let done = cursor.iter().zip(threads).all(|(&c, ops)| c == ops.len());
        if done {
            if let Some((&(src, dst, tag), n)) = chan.iter().find(|&(_, &n)| n > 0) {
                return Err(format!(
                    "{n} undrained message(s) on (src {src}, dst {dst}, tag {tag})"
                ));
            }
            return Ok(());
        }
        if !progressed {
            let stuck: Vec<String> = threads
                .iter()
                .enumerate()
                .filter(|&(t, ops)| cursor[t] < ops.len())
                .map(|(t, ops)| {
                    let (v, po) = ops[cursor[t]];
                    format!("thread {t} (as vrank {v}) blocked at {:?}", po.op)
                })
                .collect();
            return Err(format!("deadlock: {}", stuck.join("; ")));
        }
    }
}

/// Check deadlock freedom of every merged dual-role schedule: for each
/// grid side `2..=max_side`, each dead rank, and a scenario sweep (the
/// base schedule; the full schedule; on sides 3–4 every single legal DLB
/// transfer, which covers transfers into, out of, and past the merged
/// thread). Returns `(schedules checked, violations)`.
pub fn check_merged_schedules(max_side: usize) -> (usize, Vec<String>) {
    let mut checked = 0;
    let mut out = Vec::new();
    for side in 2..=max_side.max(2) {
        let torus = Torus2d::new(side, side);
        let p = torus.len();
        let mut scenarios: Vec<ScheduleOpts> = vec![
            ScheduleOpts::default(),
            ScheduleOpts {
                dlb: side >= 3,
                ..ScheduleOpts::full()
            },
        ];
        if (3..=4).contains(&side) {
            for r in 0..p {
                for (di, dj) in LEGAL_DELTAS {
                    scenarios.push(ScheduleOpts {
                        dlb: true,
                        decisions: vec![(r, torus.neighbor(r, di, dj))],
                        ..ScheduleOpts::full()
                    });
                }
            }
        }
        for opts in &scenarios {
            let s = step_schedule(side, opts);
            for dead in 0..p {
                let buddy = torus.buddy(dead);
                checked += 1;
                if let Err(e) = run_thread_schedules(&merged_thread_schedule(&s, dead, buddy)) {
                    out.push(format!(
                        "side {side}, dead {dead} (buddy {buddy}), scenario {:?}: {e}",
                        opts.decisions
                    ));
                }
            }
        }
    }
    (checked, out)
}

/// What the takeover sweep observed.
#[derive(Debug, Clone)]
pub struct TakeoverSweepOutcome {
    /// `(side, dead)` buddy-map cases checked statically.
    pub buddy_checks: usize,
    /// Merged dual-role schedules checked for deadlock freedom.
    pub merged_schedules: usize,
    /// Runtime kill-point runs performed across both configs.
    pub kill_runs: usize,
    /// Kill-point runs whose kill actually fired.
    pub kills_fired: usize,
    /// Fired kills absorbed fully in place (degraded completion on
    /// `n − 1` threads: one launch, one takeover).
    pub degraded: usize,
    /// Fired kills that fell back to a full relaunch (legitimate for the
    /// narrow completion-handshake window; must stay the exception).
    pub relaunched: usize,
    /// Two-death escalation runs performed (one per config).
    pub second_death_runs: usize,
    /// Static or parity failures (empty when the protocol holds).
    pub violations: Vec<String>,
}

/// Recovery knobs for sweep runs (mirrors the fault sweep's rationale).
fn sweep_opts() -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 6,
        poll: Duration::from_millis(2),
        watchdog: Duration::from_secs(10),
    }
}

/// The two sweep workloads: the 2×2 DDM-only recovery configuration the
/// fault sweep uses, and a 3×3 clustered DLB run — the smallest grid on
/// which a takeover thread drives two ranks through the load/decision/
/// cell-transfer exchanges. Both gather the invariant sentinel so the
/// degraded path is also exercised under it.
fn sweep_configs() -> Vec<(&'static str, RunConfig)> {
    let mut c2 = crate::faults::sweep_config();
    c2.sentinel_interval = 6;
    let mut c3 = RunConfig::new(600, 9, 9, 0.05);
    c3.lattice = Lattice::Cluster { fill: 0.5 };
    c3.steps = 20;
    c3.dlb = true;
    c3.seed = 3;
    c3.thermostat_interval = 10;
    c3.checkpoint_interval = 5;
    c3.sentinel_interval = 6;
    c3.validate();
    vec![("2x2", c2), ("3x3", c3)]
}

/// The full takeover check: static buddy map, merged-schedule deadlock
/// freedom, and the runtime kill-point sweep at the given send-op
/// `stride`.
pub fn takeover_sweep(stride: u64, max_side: usize) -> TakeoverSweepOutcome {
    let stride = stride.max(1);
    let mut out = TakeoverSweepOutcome {
        buddy_checks: 0,
        merged_schedules: 0,
        kill_runs: 0,
        kills_fired: 0,
        degraded: 0,
        relaunched: 0,
        second_death_runs: 0,
        violations: Vec::new(),
    };
    let (buddy_checks, mut v) = check_buddy_map(max_side);
    out.buddy_checks = buddy_checks;
    out.violations.append(&mut v);
    let (merged, mut v) = check_merged_schedules(max_side);
    out.merged_schedules = merged;
    out.violations.append(&mut v);

    let opts = sweep_opts();
    for (name, cfg) in sweep_configs() {
        let reference = match run_with_takeover(&cfg, &opts) {
            Ok(r) => r,
            Err(e) => {
                out.violations
                    .push(format!("{name}: fault-free reference run failed: {e}"));
                continue;
            }
        };
        if reference.attempts != 1 || reference.takeovers != 0 {
            out.violations.push(format!(
                "{name}: fault-free reference took {} attempt(s), {} takeover(s)",
                reference.attempts, reference.takeovers
            ));
        }
        // Mean-plus-margin per-rank send bound, as in the fault sweep.
        let max_op = reference.report.msgs_sent / cfg.p as u64 + cfg.steps;
        let mut config_degraded = 0usize;
        for rank in 0..cfg.p {
            for op in (0..max_op).step_by(stride as usize) {
                let res = run_with_takeover_faulted(&cfg, &opts, |attempt, r| {
                    (attempt == 0 && r == rank).then(|| FaultPlan::kill_at(op))
                });
                out.kill_runs += 1;
                match res {
                    Ok(o) => {
                        if o.attempts > 1 || o.takeovers > 0 {
                            out.kills_fired += 1;
                        }
                        if o.attempts == 1 && o.takeovers > 0 {
                            out.degraded += 1;
                            config_degraded += 1;
                        } else if o.attempts > 1 {
                            out.relaunched += 1;
                        }
                        if o.digest != reference.digest {
                            out.violations.push(format!(
                                "{name} kill(rank {rank}, op {op}): digest {:#018x} != reference \
                                 {:#018x} ({} attempt(s), {} takeover(s))",
                                o.digest, reference.digest, o.attempts, o.takeovers
                            ));
                        }
                    }
                    Err(e) => out.violations.push(format!(
                        "{name} kill(rank {rank}, op {op}): unrecovered: {e}"
                    )),
                }
            }
        }
        if config_degraded == 0 {
            out.violations.push(format!(
                "{name}: no kill point was absorbed in place — the takeover rung never engaged"
            ));
        }
        // Escalation rung: a second death in the same launch must fall
        // back to a clean full relaunch (no hang, parity preserved).
        let (op_a, op_b) = (max_op / 2, max_op * 3 / 4);
        let res = run_with_takeover_faulted(&cfg, &opts, |attempt, r| {
            if attempt != 0 {
                return None;
            }
            match r {
                1 => Some(FaultPlan::kill_at(op_a)),
                2 => Some(FaultPlan::kill_at(op_b)),
                _ => None,
            }
        });
        out.second_death_runs += 1;
        match res {
            Ok(o) => {
                if o.attempts < 2 {
                    out.violations.push(format!(
                        "{name} second-death(ops {op_a}/{op_b}): completed in {} attempt(s) — \
                         the second kill never fired or was wrongly absorbed",
                        o.attempts
                    ));
                }
                if o.digest != reference.digest {
                    out.violations.push(format!(
                        "{name} second-death(ops {op_a}/{op_b}): digest {:#018x} != reference {:#018x}",
                        o.digest, reference.digest
                    ));
                }
            }
            Err(e) => out.violations.push(format!(
                "{name} second-death(ops {op_a}/{op_b}): unrecovered: {e}"
            )),
        }
    }
    out
}

/// [`takeover_sweep`] under a global wall-clock `timeout` — the sweep
/// checks the no-hang guarantee, so a hang must fail, not wedge CI.
pub fn takeover_sweep_with_timeout(
    stride: u64,
    max_side: usize,
    timeout: Duration,
) -> Result<TakeoverSweepOutcome, String> {
    run_under_timeout(timeout, "takeover sweep", move || {
        takeover_sweep(stride, max_side)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buddy_map_is_total_adjacent_and_coverage_preserving() {
        let (checked, violations) = check_buddy_map(6);
        assert!(violations.is_empty(), "{violations:#?}");
        // 4 + 9 + 16 + 25 + 36 dead-rank cases.
        assert_eq!(checked, 90);
    }

    #[test]
    fn merged_dual_role_schedules_are_deadlock_free() {
        let (checked, violations) = check_merged_schedules(5);
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(checked > 1000, "swept {checked} merged schedules");
    }

    #[test]
    fn single_role_merge_reproduces_the_rank_schedule() {
        let s = step_schedule(3, &ScheduleOpts::full());
        for r in 0..s.p {
            let merged: Vec<PhasedOp> = merge_roles(&s, &[r])
                .into_iter()
                .map(|(_, po)| po)
                .collect();
            assert_eq!(merged, s.ranks[r], "rank {r}");
        }
    }

    #[test]
    fn the_checker_detects_a_recv_before_send_cycle() {
        let mk = |op| PhasedOp {
            phase: CommPhase::Migrate,
            op,
        };
        // Two threads, each receiving before posting the send the other
        // blocks on.
        let threads = vec![
            vec![
                (0, mk(Op::Recv { from: 1, tag: 4 })),
                (0, mk(Op::Send { to: 1, tag: 4 })),
            ],
            vec![
                (1, mk(Op::Recv { from: 0, tag: 4 })),
                (1, mk(Op::Send { to: 0, tag: 4 })),
            ],
        ];
        let err = run_thread_schedules(&threads).expect_err("must deadlock");
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn the_checker_detects_a_same_thread_gather_inversion() {
        // A thread holding the gather root (role 0) and a contributor
        // (role 1), wrongly merged ascending: role 0 blocks on role 1's
        // contribution, which its own thread only posts later.
        let mk = |op| PhasedOp {
            phase: CommPhase::Stats,
            op,
        };
        let threads = vec![
            vec![
                (0, mk(Op::Recv { from: 1, tag: 12 })),
                (0, mk(Op::Recv { from: 2, tag: 12 })),
                (1, mk(Op::Send { to: 0, tag: 12 })),
            ],
            vec![(2, mk(Op::Send { to: 0, tag: 12 }))],
        ];
        let err = run_thread_schedules(&threads).expect_err("must deadlock");
        assert!(err.contains("blocked at"), "{err}");
        // The correct (descending) merge of the same ops is clean.
        let threads = vec![
            vec![
                (1, mk(Op::Send { to: 0, tag: 12 })),
                (0, mk(Op::Recv { from: 1, tag: 12 })),
                (0, mk(Op::Recv { from: 2, tag: 12 })),
            ],
            vec![(2, mk(Op::Send { to: 0, tag: 12 }))],
        ];
        run_thread_schedules(&threads).expect("descending merge is deadlock-free");
    }

    #[test]
    fn the_checker_detects_an_undrained_channel() {
        let mk = |op| PhasedOp {
            phase: CommPhase::Migrate,
            op,
        };
        let threads = vec![vec![(0, mk(Op::Send { to: 1, tag: 4 }))], vec![]];
        let err = run_thread_schedules(&threads).expect_err("must report the leak");
        assert!(err.contains("undrained"), "{err}");
    }

    #[test]
    fn tiny_takeover_sweep_holds_parity_on_both_grids() {
        // A coarse stride keeps this a smoke test; the fine-grained sweep
        // is `pcdlb-check takeover` (CI's takeover-matrix job).
        let out = takeover_sweep(199, 4);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert!(out.kills_fired > 0, "the low kill points must fire");
        assert!(out.degraded > 0, "at least one in-place takeover per sweep");
        assert_eq!(out.second_death_runs, 2);
    }
}

//! The elastic-resize sweep: parity and fault absorption across world
//! generations.
//!
//! `pcdlb-sim`'s elastic driver ([`pcdlb_sim::run_elastic`]) claims that
//! a run which drains, remaps its torus to a different PE count, and
//! resumes — possibly several times, in both directions — produces the
//! **bitwise identical** particle state of an uninterrupted serial run,
//! and that the full recovery ladder (buddy takeover, checkpoint
//! relaunch) keeps working *through* the resize machinery itself. One
//! hand-picked resize point cannot substantiate either claim. This
//! module sweeps both:
//!
//! - **Parity sweep**: shrink and grow plans at several step boundaries
//!   on two cell grids (4³ and 6³, with and without DLB), each checked
//!   for particle-count conservation, a complete per-step record series,
//!   single-launch generations, and bitwise snapshot parity against the
//!   serial reference — and, on the DLB grid, against the plane and cube
//!   decompositions too. Ownership-partition validity is enforced inside
//!   the drain remap (it panics on a duplicate or missing owner), and
//!   the per-generation sentinel aborts any run that breaks conservation
//!   mid-flight, so a clean completion is itself the audit.
//! - **Drain-gather kills**: with periodic checkpoints off, the only
//!   `CKPT_GATHER` traffic is the resize drains — kill each non-root
//!   rank of each draining generation at its drain contribution send and
//!   require digest parity with the fault-free elastic reference.
//! - **Resize-barrier kills**: kill each rank of each resumed generation
//!   inside the `RESIZE_READY`/`RESIZE_GO` barrier itself (non-root
//!   ranks at their READY send, the root at its first GO send) and
//!   require the same parity.
//! - **Strided kill sweep**: kill every rank of every generation at
//!   strided send ops across the whole elastic run, covering deaths
//!   before, inside, and after each resize window.
//!
//! Every sweep runs under a global wall-clock timeout: the no-hang
//! guarantee extends to the resize barrier (deadline-bounded, aborts on
//! expiry), so a hang is reported as a failure rather than wedging CI.

use std::time::Duration;

use pcdlb_core::protocol::tags;
use pcdlb_mp::collectives::ctag;
use pcdlb_mp::FaultPlan;
use pcdlb_sim::config::{Lattice, RunConfig};
use pcdlb_sim::cube::run_cube_with_snapshot;
use pcdlb_sim::plane::run_plane_with_snapshot;
use pcdlb_sim::{
    run_elastic, run_elastic_faulted, run_serial, RecoveryOptions, ResizeOutcome, ResizePlan,
};

use crate::faults::run_under_timeout;

/// What a resize sweep observed.
#[derive(Debug, Clone)]
pub struct ResizeSweepOutcome {
    /// `digest_recovery` of the fault-free elastic reference every
    /// faulted run is compared against.
    pub reference_digest: u64,
    /// Parity cases checked (one per `(config, plan)` pair).
    pub parity_runs: usize,
    /// Drain-gather kill runs performed.
    pub drain_runs: usize,
    /// Drain-gather kill runs whose kill actually fired.
    pub drain_kills_fired: usize,
    /// Resize-barrier kill runs performed.
    pub barrier_runs: usize,
    /// Resize-barrier kill runs whose kill actually fired.
    pub barrier_kills_fired: usize,
    /// Strided kill-point runs performed.
    pub kill_runs: usize,
    /// Strided kill-point runs whose kill actually fired.
    pub kills_fired: usize,
    /// Parity or recovery failures (empty when the invariants hold).
    pub violations: Vec<String>,
}

/// The 4³-grid sweep workload: the recovery tests' small-but-busy 2×2
/// configuration (clustered start, mid-run thermostat), extended with a
/// sentinel cadence so every generation audits conservation.
fn cfg_4(checkpoint_interval: u64) -> RunConfig {
    let mut cfg = RunConfig::new(216, 4, 4, 0.2);
    cfg.dlb = false;
    cfg.steps = 24;
    cfg.thermostat_interval = 10;
    cfg.lattice = Lattice::Cluster { fill: 0.8 };
    cfg.seed = 11;
    cfg.checkpoint_interval = checkpoint_interval;
    cfg.sentinel_interval = 4;
    cfg
}

/// The 6³-grid workload: a 3×3 torus running DLB, resized through a 2×2
/// generation (DLB auto-gated off) and back.
fn cfg_6() -> RunConfig {
    let mut cfg = RunConfig::new(343, 6, 9, 0.08);
    cfg.dlb = true;
    cfg.steps = 18;
    cfg.thermostat_interval = 7;
    cfg.lattice = Lattice::Cluster { fill: 0.8 };
    cfg.seed = 13;
    cfg.checkpoint_interval = 6;
    cfg.sentinel_interval = 3;
    cfg
}

fn sweep_opts() -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 6,
        poll: Duration::from_millis(2),
        watchdog: Duration::from_secs(10),
    }
}

/// The PE count of each world generation a plan launches, `cfg.p` first.
fn generation_ps(cfg: &RunConfig, plan: &ResizePlan) -> Vec<usize> {
    let mut ps = vec![cfg.p];
    ps.extend(plan.stages.iter().map(|s| s.p));
    ps
}

/// Check one elastic outcome against the serial reference: conservation,
/// complete records, one launch per generation, bitwise snapshot parity.
fn check_parity(
    label: &str,
    cfg: &RunConfig,
    plan: &ResizePlan,
    out: &ResizeOutcome,
    violations: &mut Vec<String>,
) {
    if out.snapshot.len() != cfg.n_particles {
        violations.push(format!(
            "{label}: snapshot holds {} of {} particles",
            out.snapshot.len(),
            cfg.n_particles
        ));
    }
    if out.report.records.len() != cfg.steps as usize
        || out
            .report
            .records
            .iter()
            .enumerate()
            .any(|(i, r)| r.step != i as u64 + 1)
    {
        violations.push(format!(
            "{label}: record series incomplete ({} of {} steps)",
            out.report.records.len(),
            cfg.steps
        ));
    }
    if out.attempts != generation_ps(cfg, plan).len() {
        violations.push(format!(
            "{label}: {} launches for {} generations on a fault-free run",
            out.attempts,
            generation_ps(cfg, plan).len()
        ));
    }
    if out.snapshot != run_serial(cfg) {
        violations.push(format!("{label}: snapshot diverged from the serial run"));
    }
}

/// Sweep resize parity (shrink and grow at several boundaries on both
/// grids) and kill every interesting point of the resize window at the
/// given send-op `stride`, asserting elastic parity for each.
pub fn resize_sweep(stride: u64) -> ResizeSweepOutcome {
    let stride = stride.max(1);
    let mut out = ResizeSweepOutcome {
        reference_digest: 0,
        parity_runs: 0,
        drain_runs: 0,
        drain_kills_fired: 0,
        barrier_runs: 0,
        barrier_kills_fired: 0,
        kill_runs: 0,
        kills_fired: 0,
        violations: Vec::new(),
    };
    let opts = sweep_opts();

    // ---- Parity sweep: boundaries and directions on the 4³ grid. ----
    let parity_plans = [
        ResizePlan::new().resize(8, 16).resize(16, 4), // grow, shrink back
        ResizePlan::new().resize(12, 16),              // grow and stay grown
        ResizePlan::new().resize(5, 1).resize(10, 16).resize(18, 4), // through serial
        ResizePlan::new().resize(4, 16).resize(8, 1).resize(20, 16), // every direction
    ];
    for (i, plan) in parity_plans.iter().enumerate() {
        let cfg = cfg_4(5);
        let label = format!("parity[4³ plan {i}]");
        out.parity_runs += 1;
        match run_elastic(&cfg, plan, &opts) {
            Ok(o) => check_parity(&label, &cfg, plan, &o, &mut out.violations),
            Err(e) => out.violations.push(format!("{label}: failed: {e}")),
        }
    }
    // The 6³ DLB grid, additionally checked against the plane and cube
    // decompositions — the same physics under all three.
    {
        let cfg = cfg_6();
        let plan = ResizePlan::new().resize(6, 4).resize(12, 9);
        let label = "parity[6³ dlb]";
        out.parity_runs += 1;
        match run_elastic(&cfg, &plan, &opts) {
            Ok(o) => {
                check_parity(label, &cfg, &plan, &o, &mut out.violations);
                let mut plane_cfg = cfg.clone();
                plane_cfg.p = 3;
                plane_cfg.dlb = false;
                if o.snapshot != run_plane_with_snapshot(&plane_cfg).1 {
                    out.violations
                        .push(format!("{label}: diverged from the plane decomposition"));
                }
                let mut cube_cfg = cfg.clone();
                cube_cfg.p = 8;
                cube_cfg.dlb = false;
                if o.snapshot != run_cube_with_snapshot(&cube_cfg).1 {
                    out.violations
                        .push(format!("{label}: diverged from the cube decomposition"));
                }
            }
            Err(e) => out.violations.push(format!("{label}: failed: {e}")),
        }
    }

    // ---- Kill sweeps through the resize window on the 4³ grid. ----
    // Periodic checkpoints off: the only CKPT_GATHER traffic is the two
    // resize drains, so drain kills land in the drain window by
    // construction (and every relaunch replays from the drain boundary
    // or step 0, exercising the generation restart path).
    let cfg = cfg_4(0);
    let plan = ResizePlan::new().resize(8, 16).resize(16, 4);
    let gen_ps = generation_ps(&cfg, &plan);
    let reference = match run_elastic(&cfg, &plan, &opts) {
        Ok(r) => r,
        Err(e) => {
            out.violations
                .push(format!("fault-free elastic reference failed: {e}"));
            return out;
        }
    };
    out.reference_digest = reference.digest;
    let mut check_faulted =
        |label: String, runs: &mut usize, fired: &mut usize, res: Result<ResizeOutcome, _>| {
            *runs += 1;
            match res {
                Ok(o) => {
                    if o.takeovers > 0 || o.attempts > gen_ps.len() {
                        *fired += 1;
                    }
                    if o.digest != reference.digest {
                        out.violations.push(format!(
                            "{label}: digest {:#018x} != reference {:#018x} after {} launch(es)",
                            o.digest, reference.digest, o.attempts
                        ));
                    }
                }
                Err(e) => out.violations.push(format!("{label}: unrecovered: {e}")),
            }
        };

    // Drain-gather kills: each non-root rank of each draining generation
    // (the root only receives in a gather) at its contribution send.
    let drain_tag = ctag(tags::CKPT_GATHER, 0);
    let (mut drain_runs, mut drain_fired) = (0, 0);
    for (launch, &p) in gen_ps.iter().enumerate().take(gen_ps.len() - 1) {
        for rank in 1..p {
            let res = run_elastic_faulted(&cfg, &plan, &opts, |l, r| {
                (l == launch && r == rank).then(|| FaultPlan::kill_on_tag(drain_tag, 0))
            });
            check_faulted(
                format!("drain-kill(launch {launch}, rank {rank})"),
                &mut drain_runs,
                &mut drain_fired,
                res,
            );
        }
    }

    // Barrier kills: each rank of each resumed generation inside the
    // READY/GO barrier — non-root ranks die at their READY send, the
    // root at its first GO send.
    let (mut barrier_runs, mut barrier_fired) = (0, 0);
    for (launch, &p) in gen_ps.iter().enumerate().skip(1) {
        for rank in 0..p {
            let fault = if rank == 0 {
                FaultPlan::kill_on_tag(tags::RESIZE_GO, 0)
            } else {
                FaultPlan::kill_on_tag(tags::RESIZE_READY, 0)
            };
            let res = run_elastic_faulted(&cfg, &plan, &opts, |l, r| {
                (l == launch && r == rank).then(|| fault.clone())
            });
            check_faulted(
                format!("barrier-kill(launch {launch}, rank {rank})"),
                &mut barrier_runs,
                &mut barrier_fired,
                res,
            );
        }
    }

    // Strided kill sweep across every generation: op indices past a
    // rank's real send count simply never fire, so a generous shared
    // bound covers each generation without per-rank totals.
    let max_op = reference.report.msgs_sent / cfg.p as u64 + cfg.steps;
    let (mut kill_runs, mut kills_fired) = (0, 0);
    for (launch, &p) in gen_ps.iter().enumerate() {
        for rank in 0..p {
            for op in (0..max_op).step_by(stride as usize) {
                let res = run_elastic_faulted(&cfg, &plan, &opts, |l, r| {
                    (l == launch && r == rank).then(|| FaultPlan::kill_at(op))
                });
                check_faulted(
                    format!("kill(launch {launch}, rank {rank}, op {op})"),
                    &mut kill_runs,
                    &mut kills_fired,
                    res,
                );
            }
        }
    }
    out.drain_runs = drain_runs;
    out.drain_kills_fired = drain_fired;
    out.barrier_runs = barrier_runs;
    out.barrier_kills_fired = barrier_fired;
    out.kill_runs = kill_runs;
    out.kills_fired = kills_fired;
    out
}

/// [`resize_sweep`] under a global wall-clock `timeout`.
pub fn resize_sweep_with_timeout(
    stride: u64,
    timeout: Duration,
) -> Result<ResizeSweepOutcome, String> {
    run_under_timeout(timeout, "resize sweep", move || resize_sweep(stride))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_sweep_holds_elastic_parity() {
        // A coarse stride keeps this a smoke test; the fine-grained sweep
        // is `pcdlb-check resize` (CI's resize-matrix job).
        let out = resize_sweep(499);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert_eq!(out.parity_runs, 5);
        // 3 + 15 non-root drain contributors, every one a real kill.
        assert_eq!(out.drain_runs, 18);
        assert_eq!(
            out.drain_kills_fired, out.drain_runs,
            "each draining rank sends exactly one contribution, so every drain kill must fire"
        );
        // 16 + 4 ranks across the two resumed generations.
        assert_eq!(out.barrier_runs, 20);
        assert_eq!(
            out.barrier_kills_fired, out.barrier_runs,
            "every rank of a resumed generation crosses the barrier, so every barrier kill must fire"
        );
        assert!(out.kill_runs >= 24, "one strided point per (launch, rank)");
        assert!(out.kills_fired > 0, "the low kill points must fire");
        assert_ne!(out.reference_digest, 0);
    }
}

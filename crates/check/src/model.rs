//! The stateful protocol model checker: explore message-delivery
//! interleavings of real simulator runs, prune commuting alternatives
//! with a dynamic partial-order reduction, and check **typed safety
//! properties** on every explored trace — not just digest equality.
//!
//! # How it works
//!
//! Each run executes the actual simulator under a
//! [`ReplayPolicy`](pcdlb_mp::check::ReplayPolicy) prefix (exactly like
//! [`crate::explore`]) with every rank thread bound to a protocol event
//! log ([`ProtocolEvent`]): sends, admissions, delivery choices (with the
//! full candidate set), consumptions (flagged when made through a
//! timing-sensitive probe), epoch advances, parks, stale drops, persona
//! adoptions, pool checkouts/checkins, aborts, and the simulator's
//! conservation sentinels.
//!
//! The DFS over replay prefixes then forks alternatives at delivery
//! choice points — but, in [`Reduction::Por`] mode, only *dependent*
//! ones:
//!
//! - **Independence.** Two delivery alternatives at a choice point
//!   commute when both messages are later consumed by *blocking
//!   exact-match* receives. Blocking `recv(src, tag)` consumption cannot
//!   observe inter-stream delivery order (per-source FIFO is preserved
//!   either way), so swapping the two deliveries provably reaches the
//!   same state; the alternative is pruned (`pruned_independent`). An
//!   alternative is dependent — and forked — when either message is
//!   consumed through a probe (`try_recv` / `recv_deadline`, as in the
//!   takeover barriers) or is never consumed at all (its delivery races
//!   a death or shutdown).
//! - **Sleep sets.** A fork target identical to one already queued or
//!   explored (same full per-rank prefix) is skipped
//!   (`pruned_sleep`) — the backtrack-set dedup of DPOR.
//! - **State hashing.** Each run's canonical per-rank event projection
//!   is hashed; a run that lands on an already-visited state spawns no
//!   further forks (`pruned_visited`).
//!
//! [`Reduction::Exhaustive`] forks every alternative regardless — the
//! brute-force baseline. Even a two-step 2×2 run has ~75 choice points
//! of arity up to 3 per trace, so unreduced DFS cannot drain any real
//! configuration; exhaustive mode exists to validate the explorer on
//! small synthetic budgets (the exhaustive and reduced explorations must
//! agree on digests and properties over the traces both reach) and to
//! size the brute-force frontier the reduction is measured against. The
//! standard matrix therefore verifies 2×2 worlds *exhaustively up to the
//! independence relation*: [`Reduction::Por`] with the drain requirement
//! (`exhausted == true`), meaning every non-commuting interleaving was
//! explored.
//!
//! The reported `unreduced_estimate` is a *conservative lower bound* on
//! what exhaustive DFS would explore: every prefix the reduced search
//! runs would also be run exhaustively, plus every distinct alternative
//! it pruned would have been queued as at least one more run. The true
//! exhaustive count compounds per-branch and is strictly larger.
//!
//! # Property catalogue
//!
//! Checked on every explored trace, each violation reported with the
//! minimal offending event window (the last few events of the stream the
//! property tracks):
//!
//! | property            | statement                                                              |
//! |---------------------|------------------------------------------------------------------------|
//! | `send-gapless`      | per (src, dst) stream and epoch, sent seqs are 0, 1, 2, … with no gap  |
//! | `admit-gapless`     | per (dst, src) stream and epoch, admitted seqs are 0, 1, 2, …          |
//! | `recv-non-overtaking` | per (dst, src, tag) and epoch, consumed seqs strictly increase       |
//! | `epoch-monotone`    | epochs only advance; admits match, parks exceed, stale drops trail the current epoch |
//! | `pool-balance`      | every checkin matches an outstanding checkout; clean pool drop leaves none outstanding |
//! | `adopt-once`        | a virtual rank is adopted at most once per registered death            |
//! | `sentinel-conservation` | every complete sentinel round sums to the configured particle count |
//!
//! Takeover runs reuse the same machinery through
//! [`run_with_takeover_instrumented`]: the replay prefix drives attempt
//! 0 (where the kill fires), logs accumulate across attempts segmented
//! by `Birth` markers, and the probe-consumed barrier traffic makes the
//! post-death window exactly where the checker forks.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pcdlb_mp::check::{
    new_event_log, ChoiceTrace, DeliveryPolicy, EventLog, ProtocolEvent, ReplayPolicy, TraceHandle,
};
use pcdlb_mp::{FaultPlan, Tag};
use pcdlb_sim::config::{Lattice, RunConfig};
use pcdlb_sim::digest::Fnv1a;
use pcdlb_sim::driver::run_digest_instrumented;
use pcdlb_sim::{run_with_takeover, run_with_takeover_instrumented, RecoveryOptions};

// ---------------------------------------------------------------------------
// Outcome types
// ---------------------------------------------------------------------------

/// One typed safety-property violation, with the minimal offending event
/// window for diagnosis.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PropertyViolation {
    /// Which property failed (see the module-level catalogue).
    pub property: &'static str,
    /// Physical rank whose event log exhibits the violation (`usize::MAX`
    /// for cross-rank properties).
    pub rank: usize,
    /// What went wrong, with the concrete stream/key and values.
    pub detail: String,
    /// The offending tail of the relevant event stream, oldest first —
    /// only events the property actually tracks, ending at the violation.
    pub trace: Vec<String>,
}

impl std::fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.rank == usize::MAX {
            write!(f, "[{}] {}", self.property, self.detail)?;
        } else {
            write!(f, "[{}] rank {}: {}", self.property, self.rank, self.detail)?;
        }
        for ev in &self.trace {
            write!(f, "\n      {ev}")?;
        }
        Ok(())
    }
}

/// Whether the checker prunes commuting delivery alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Fork every alternative at every choice point (2×2 validation).
    Exhaustive,
    /// Fork only dependent alternatives (sleep sets + state hashing).
    Por,
}

/// What one model-checking case observed.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    /// Case label, e.g. `3x3-overlapped-takeover`.
    pub label: String,
    /// Reduction mode the case ran under.
    pub mode: Reduction,
    /// Simulator runs executed.
    pub runs: usize,
    /// True when the DFS frontier drained within the run budget — every
    /// discovered (non-pruned) alternative was explored.
    pub exhausted: bool,
    /// Distinct end-state digests — must be a singleton.
    pub digests: BTreeSet<u64>,
    /// Distinct canonical event-projection hashes seen.
    pub distinct_states: usize,
    /// Delivery choice points observed (cumulative over runs).
    pub choice_points: usize,
    /// Largest candidate set at any choice point.
    pub max_arity: usize,
    /// Alternatives actually queued for exploration.
    pub forks: usize,
    /// Alternatives pruned because both deliveries commute (consumed by
    /// blocking exact-match receives).
    pub pruned_independent: usize,
    /// Fork targets dropped as already queued/explored (sleep set).
    pub pruned_sleep: usize,
    /// Runs landing on an already-visited state hash (no further forks).
    pub pruned_visited: usize,
    /// Conservative lower bound on the exhaustive-DFS run count for the
    /// same frontier (see the module docs).
    pub unreduced_estimate: usize,
    /// Protocol events recorded across all runs.
    pub events: usize,
    /// Deduplicated property violations across all explored traces.
    pub violations: Vec<PropertyViolation>,
}

impl ModelOutcome {
    /// Explored-interleaving reduction vs the unreduced lower bound.
    pub fn reduction_factor(&self) -> f64 {
        if self.runs == 0 {
            return 1.0;
        }
        self.unreduced_estimate as f64 / self.runs as f64
    }

    /// True when every explored trace satisfied every property and all
    /// digests agree.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.digests.len() <= 1
    }
}

// ---------------------------------------------------------------------------
// Typed safety properties
// ---------------------------------------------------------------------------

/// Tail window of the events `pred` selects, up to and including index
/// `upto`, rendered for a violation report.
fn window(
    events: &[ProtocolEvent],
    upto: usize,
    pred: impl Fn(&ProtocolEvent) -> bool,
) -> Vec<String> {
    const WINDOW: usize = 6;
    let mut picked: Vec<String> = events[..=upto]
        .iter()
        .filter(|e| pred(e))
        .map(|e| e.to_string())
        .collect();
    if picked.len() > WINDOW {
        picked.drain(..picked.len() - WINDOW);
        picked.insert(0, "…".to_string());
    }
    picked
}

/// Per-thread stream state, reset at every `Birth` (relaunch boundary).
#[derive(Default)]
struct ThreadState {
    /// Current wire epoch.
    epoch: u64,
    /// (src, dst) → (epoch, next expected seq) for sends.
    send: BTreeMap<(usize, usize), (u64, u64)>,
    /// (dst, src) → (epoch, next expected seq) for admissions.
    admit: BTreeMap<(usize, usize), (u64, u64)>,
    /// (dst, src, tag, epoch) → last consumed seq.
    recv: BTreeMap<(usize, usize, Tag, u64), u64>,
    /// pool id → outstanding checked-out slots.
    pools: BTreeMap<u64, BTreeSet<usize>>,
    /// Link layer: (src, dst) → last cumulative-ack point observed.
    acks: BTreeMap<(usize, usize), u64>,
    /// Failure detector: (rank, peer) pairs currently under suspicion.
    suspected: BTreeSet<(usize, usize)>,
}

/// Gapless-stream step shared by `send-gapless` and `admit-gapless`:
/// seqs restart at 0 whenever the stream's epoch moves forward and
/// otherwise increment by exactly 1.
fn gapless_step(
    entry: &mut (u64, u64),
    fresh: bool,
    epoch: u64,
    seq: u64,
    what: &str,
) -> Result<(), String> {
    if fresh || epoch > entry.0 {
        *entry = (epoch, 0);
    } else if epoch < entry.0 {
        return Err(format!(
            "{what} regressed to epoch {epoch} after epoch {}",
            entry.0
        ));
    }
    if seq != entry.1 {
        return Err(format!(
            "{what} seq {} expected, got {seq} (epoch {epoch})",
            entry.1
        ));
    }
    entry.1 += 1;
    Ok(())
}

/// Check every per-thread property on one rank's event log. Violations
/// carry the offending stream's event window.
pub fn check_thread_properties(rank: usize, events: &[ProtocolEvent]) -> Vec<PropertyViolation> {
    let mut out = Vec::new();
    let mut st = ThreadState::default();
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            ProtocolEvent::Birth { .. } => st = ThreadState::default(),
            ProtocolEvent::Send {
                src,
                dst,
                seq,
                epoch,
                ..
            } => {
                let fresh = !st.send.contains_key(&(src, dst));
                let entry = st.send.entry((src, dst)).or_default();
                if let Err(detail) =
                    gapless_step(entry, fresh, epoch, seq, &format!("send {src}->{dst}"))
                {
                    out.push(PropertyViolation {
                        property: "send-gapless",
                        rank,
                        detail,
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::Send { src: s, dst: d, .. } if *s == src && *d == dst)
                        }),
                    });
                }
            }
            ProtocolEvent::Admit {
                dst,
                src,
                seq,
                epoch,
                ..
            } => {
                let fresh = !st.admit.contains_key(&(dst, src));
                let entry = st.admit.entry((dst, src)).or_default();
                if let Err(detail) =
                    gapless_step(entry, fresh, epoch, seq, &format!("admit {src}->{dst}"))
                {
                    out.push(PropertyViolation {
                        property: "admit-gapless",
                        rank,
                        detail,
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::Admit { dst: d, src: s, .. } if *d == dst && *s == src)
                        }),
                    });
                }
                if epoch != st.epoch {
                    out.push(PropertyViolation {
                        property: "epoch-monotone",
                        rank,
                        detail: format!(
                            "admitted {src}->{dst} from epoch {epoch} while at epoch {}",
                            st.epoch
                        ),
                        trace: window(events, i, |e| {
                            matches!(
                                e,
                                ProtocolEvent::Admit { .. }
                                    | ProtocolEvent::EpochAdvance { .. }
                                    | ProtocolEvent::Park { .. }
                                    | ProtocolEvent::DropStale { .. }
                            )
                        }),
                    });
                }
            }
            ProtocolEvent::Recv {
                dst,
                src,
                tag,
                seq,
                epoch,
                ..
            } => {
                let key = (dst, src, tag, epoch);
                if let Some(&last) = st.recv.get(&key) {
                    if seq <= last {
                        out.push(PropertyViolation {
                            property: "recv-non-overtaking",
                            rank,
                            detail: format!(
                                "consumed {src}->{dst} tag {tag} seq {seq} after seq {last} (epoch {epoch})"
                            ),
                            trace: window(events, i, |e| {
                                matches!(e, ProtocolEvent::Recv { dst: d, src: s, tag: t, .. }
                                         if *d == dst && *s == src && *t == tag)
                            }),
                        });
                    }
                }
                st.recv.insert(key, seq);
            }
            ProtocolEvent::Park {
                src, dst, epoch, ..
            } => {
                if epoch <= st.epoch {
                    out.push(PropertyViolation {
                        property: "epoch-monotone",
                        rank,
                        detail: format!(
                            "parked {src}->{dst} from epoch {epoch} while at epoch {} (not future)",
                            st.epoch
                        ),
                        trace: window(events, i, |e| {
                            matches!(
                                e,
                                ProtocolEvent::Park { .. } | ProtocolEvent::EpochAdvance { .. }
                            )
                        }),
                    });
                }
            }
            ProtocolEvent::DropStale {
                src, dst, epoch, ..
            } => {
                if epoch >= st.epoch {
                    out.push(PropertyViolation {
                        property: "epoch-monotone",
                        rank,
                        detail: format!(
                            "dropped {src}->{dst} from epoch {epoch} as stale while at epoch {}",
                            st.epoch
                        ),
                        trace: window(events, i, |e| {
                            matches!(
                                e,
                                ProtocolEvent::DropStale { .. }
                                    | ProtocolEvent::EpochAdvance { .. }
                            )
                        }),
                    });
                }
            }
            ProtocolEvent::EpochAdvance { epoch, .. } => {
                if epoch <= st.epoch {
                    out.push(PropertyViolation {
                        property: "epoch-monotone",
                        rank,
                        detail: format!("epoch advanced backwards: {} -> {epoch}", st.epoch),
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::EpochAdvance { .. })
                        }),
                    });
                }
                st.epoch = epoch;
                // The link layer resets with the wire epoch: cumulative
                // acks restart at zero and detector state clears without
                // an Unsuspect event, by design.
                st.acks.clear();
                st.suspected.clear();
            }
            ProtocolEvent::PoolCheckout { pool, slot } => {
                if !st.pools.entry(pool).or_default().insert(slot) {
                    out.push(PropertyViolation {
                        property: "pool-balance",
                        rank,
                        detail: format!(
                            "pool {pool} handed out slot {slot:#x} while it was already checked out"
                        ),
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::PoolCheckout { pool: p, .. }
                                     | ProtocolEvent::PoolCheckin { pool: p, .. } if *p == pool)
                        }),
                    });
                }
            }
            ProtocolEvent::PoolCheckin { pool, slot } => {
                if !st.pools.entry(pool).or_default().remove(&slot) {
                    out.push(PropertyViolation {
                        property: "pool-balance",
                        rank,
                        detail: format!(
                            "pool {pool} checkin of slot {slot:#x} that was not checked out (double checkin or foreign buffer)"
                        ),
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::PoolCheckout { pool: p, .. }
                                     | ProtocolEvent::PoolCheckin { pool: p, .. } if *p == pool)
                        }),
                    });
                }
            }
            ProtocolEvent::PoolDrop { pool, panicking } => {
                let outstanding = st.pools.remove(&pool).unwrap_or_default();
                if !panicking && !outstanding.is_empty() {
                    out.push(PropertyViolation {
                        property: "pool-balance",
                        rank,
                        detail: format!(
                            "pool {pool} dropped cleanly with {} buffer(s) still checked out",
                            outstanding.len()
                        ),
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::PoolCheckout { pool: p, .. }
                                     | ProtocolEvent::PoolCheckin { pool: p, .. }
                                     | ProtocolEvent::PoolDrop { pool: p, .. } if *p == pool)
                        }),
                    });
                }
            }
            ProtocolEvent::AckAdvance { src, dst, cum } => {
                let prev = st.acks.get(&(src, dst)).copied();
                if let Some(prev) = prev {
                    if cum <= prev {
                        out.push(PropertyViolation {
                            property: "ack-monotone",
                            rank,
                            detail: format!(
                                "link {src}->{dst} cumulative ack moved {prev} -> {cum} (not forward)"
                            ),
                            trace: window(events, i, |e| {
                                matches!(e, ProtocolEvent::AckAdvance { src: s, dst: d, .. }
                                         if *s == src && *d == dst)
                            }),
                        });
                    }
                }
                st.acks.insert((src, dst), cum);
            }
            ProtocolEvent::Retransmit { src, dst, rseq } => {
                if let Some(&cum) = st.acks.get(&(src, dst)) {
                    if rseq < cum {
                        out.push(PropertyViolation {
                            property: "retransmit-valid",
                            rank,
                            detail: format!(
                                "link {src}->{dst} retransmitted rseq {rseq} already covered by cum {cum}"
                            ),
                            trace: window(events, i, |e| {
                                matches!(e, ProtocolEvent::Retransmit { src: s, dst: d, .. }
                                         | ProtocolEvent::AckAdvance { src: s, dst: d, .. }
                                         if *s == src && *d == dst)
                            }),
                        });
                    }
                }
            }
            ProtocolEvent::Suspect { rank: r, peer } => {
                if !st.suspected.insert((r, peer)) {
                    out.push(PropertyViolation {
                        property: "suspect-episodic",
                        rank,
                        detail: format!(
                            "r{r} re-suspected r{peer} without an intervening unsuspect"
                        ),
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::Suspect { rank: a, peer: b }
                                     | ProtocolEvent::Unsuspect { rank: a, peer: b }
                                     if *a == r && *b == peer)
                        }),
                    });
                }
            }
            ProtocolEvent::Unsuspect { rank: r, peer } => {
                if !st.suspected.remove(&(r, peer)) {
                    out.push(PropertyViolation {
                        property: "suspect-episodic",
                        rank,
                        detail: format!("r{r} cleared a suspicion of r{peer} it never raised"),
                        trace: window(events, i, |e| {
                            matches!(e, ProtocolEvent::Suspect { rank: a, peer: b }
                                     | ProtocolEvent::Unsuspect { rank: a, peer: b }
                                     if *a == r && *b == peer)
                        }),
                    });
                }
            }
            ProtocolEvent::Candidate { .. }
            | ProtocolEvent::Deliver { .. }
            | ProtocolEvent::Adopt { .. }
            | ProtocolEvent::Death { .. }
            | ProtocolEvent::Abort { .. }
            | ProtocolEvent::Sentinel { .. } => {}
        }
    }
    out
}

/// Check the cross-rank properties (`adopt-once`,
/// `sentinel-conservation`) over all rank logs of one exploration run.
pub fn check_global_properties(
    n_particles: u64,
    p: usize,
    logs: &[Vec<ProtocolEvent>],
) -> Vec<PropertyViolation> {
    let mut out = Vec::new();

    // adopt-once: a virtual rank may be adopted at most once per
    // registered death of that rank, across the whole world.
    let mut deaths: BTreeMap<usize, usize> = BTreeMap::new();
    let mut adopts: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for events in logs {
        for ev in events {
            match *ev {
                ProtocolEvent::Death { rank } => *deaths.entry(rank).or_default() += 1,
                ProtocolEvent::Adopt { vrank, .. } => {
                    adopts.entry(vrank).or_default().push(ev.to_string())
                }
                _ => {}
            }
        }
    }
    for (vrank, seen) in &adopts {
        let died = deaths.get(vrank).copied().unwrap_or(0);
        if seen.len() > died {
            out.push(PropertyViolation {
                property: "adopt-once",
                rank: usize::MAX,
                detail: format!(
                    "virtual rank {vrank} adopted {} time(s) but died {died} time(s)",
                    seen.len()
                ),
                trace: seen.clone(),
            });
        }
    }

    // sentinel-conservation: for every (attempt, step) sentinel round in
    // which ALL virtual ranks reported, the (last-reported) counts must
    // sum to the configured particle total. Rounds truncated by a death
    // are skipped; post-takeover re-execution overwrites earlier reports.
    let mut rounds: BTreeMap<(usize, u64), BTreeMap<usize, u64>> = BTreeMap::new();
    for events in logs {
        let mut attempt = 0usize;
        let mut born = false;
        for ev in events {
            match *ev {
                ProtocolEvent::Birth { .. } => {
                    if born {
                        attempt += 1;
                    }
                    born = true;
                }
                ProtocolEvent::Sentinel { rank, step, count } => {
                    rounds
                        .entry((attempt, step))
                        .or_default()
                        .insert(rank, count);
                }
                _ => {}
            }
        }
    }
    for ((attempt, step), counts) in &rounds {
        if counts.len() == p {
            let total: u64 = counts.values().sum();
            if total != n_particles {
                out.push(PropertyViolation {
                    property: "sentinel-conservation",
                    rank: usize::MAX,
                    detail: format!(
                        "step {step} (attempt {attempt}): ranks report {total} particles, expected {n_particles}"
                    ),
                    trace: counts
                        .iter()
                        .map(|(r, c)| format!("sentinel r{r} step {step}: {c}"))
                        .collect(),
                });
            }
        }
    }
    out
}

/// All properties over one run's per-rank logs.
pub fn check_all_properties(
    n_particles: u64,
    p: usize,
    logs: &[Vec<ProtocolEvent>],
) -> Vec<PropertyViolation> {
    let mut out = Vec::new();
    for (rank, events) in logs.iter().enumerate() {
        out.extend(check_thread_properties(rank, events));
    }
    out.extend(check_global_properties(n_particles, p, logs));
    out
}

// ---------------------------------------------------------------------------
// Choice-point reconstruction and the independence relation
// ---------------------------------------------------------------------------

/// A delivery choice point reconstructed from a `Candidate*`/`Deliver`
/// run in one rank's event log.
#[derive(Debug, Clone)]
struct Choice {
    /// All candidate stream heads, ordered by source rank (the order the
    /// policy saw them in).
    candidates: Vec<(usize, usize, Tag, u64, u64)>, // (dst, src, tag, seq, epoch)
    /// Index of the delivered candidate.
    taken: usize,
}

/// Reconstruct the first-launch-segment choice points of one rank's log.
/// The k-th reconstructed choice corresponds to the k-th entry of the
/// rank's [`ChoiceTrace`] (the policy is consulted exactly once per
/// delivery).
fn choice_points(events: &[ProtocolEvent]) -> Vec<Choice> {
    let mut out = Vec::new();
    let mut pending: Vec<(usize, usize, Tag, u64, u64)> = Vec::new();
    let mut births = 0;
    for ev in events {
        match *ev {
            ProtocolEvent::Birth { .. } => {
                births += 1;
                if births > 1 {
                    break; // forks only drive the first launch's policy
                }
            }
            ProtocolEvent::Candidate {
                dst,
                src,
                tag,
                seq,
                epoch,
            } => pending.push((dst, src, tag, seq, epoch)),
            ProtocolEvent::Deliver {
                dst,
                src,
                tag,
                seq,
                epoch,
                ..
            } => {
                pending.push((dst, src, tag, seq, epoch));
                pending.sort_unstable_by_key(|&(_, s, ..)| s);
                let taken = pending
                    .iter()
                    .position(|&(_, s, t, q, e)| (s, t, q, e) == (src, tag, seq, epoch))
                    .expect("delivered head among candidates");
                out.push(Choice {
                    candidates: std::mem::take(&mut pending),
                    taken,
                });
            }
            _ => {}
        }
    }
    out
}

/// How each delivered message was eventually consumed in the first
/// launch segment: `Some(probe)` when a matching `Recv` exists, `None`
/// when it was never consumed.
fn consumption(events: &[ProtocolEvent]) -> BTreeMap<(usize, usize, Tag, u64, u64), bool> {
    let mut map = BTreeMap::new();
    let mut births = 0;
    for ev in events {
        match *ev {
            ProtocolEvent::Birth { .. } => {
                births += 1;
                if births > 1 {
                    break;
                }
            }
            ProtocolEvent::Recv {
                dst,
                src,
                tag,
                seq,
                epoch,
                probe,
            } => {
                // A message is consumed once; keep the strongest signal
                // (probe) if the key somehow repeats.
                let e = map.entry((dst, src, tag, seq, epoch)).or_insert(probe);
                *e = *e || probe;
            }
            _ => {}
        }
    }
    map
}

/// Is swapping the delivery of `candidates[alt]` ahead of
/// `candidates[taken]` observable? See the module docs: only when either
/// message is probe-consumed or never consumed.
fn dependent(
    choice: &Choice,
    alt: usize,
    consumed: &BTreeMap<(usize, usize, Tag, u64, u64), bool>,
) -> bool {
    let observable = |c: &(usize, usize, Tag, u64, u64)| match consumed.get(c) {
        Some(&probe) => probe, // probe consumption sees ordering
        None => true,          // never consumed: races shutdown/death
    };
    observable(&choice.candidates[choice.taken]) || observable(&choice.candidates[alt])
}

/// Canonical per-rank projection hash of one run's full event trace —
/// the visited-state key for revisit pruning.
fn state_hash(logs: &[Vec<ProtocolEvent>]) -> u64 {
    let mut h = Fnv1a::new();
    for (rank, events) in logs.iter().enumerate() {
        h.write_u64(rank as u64);
        h.write_u64(events.len() as u64);
        for ev in events {
            // The Display form is a faithful canonical rendering of every
            // event variant (tested in pcdlb-mp); hashing it avoids a
            // second serialisation of the whole alphabet.
            for b in ev.to_string().as_bytes() {
                h.write_u64(*b as u64);
            }
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// One model-checking case: a configuration plus exploration knobs.
pub struct ModelCase {
    /// Display label, e.g. `2x2-overlapped`.
    pub label: String,
    /// Simulator configuration to model-check.
    pub cfg: RunConfig,
    /// Reduction mode.
    pub mode: Reduction,
    /// Run budget; the DFS stops (non-exhausted) when it is spent.
    pub max_runs: usize,
    /// `Some((rank, op))`: kill `rank` at send op `op` on attempt 0 and
    /// model-check the takeover/recovery protocol.
    pub kill: Option<(usize, u64)>,
}

/// Recovery knobs for takeover cases (short watchdog: these runs inject
/// real deaths and must not hang the matrix).
fn model_recovery_opts() -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 6,
        poll: Duration::from_millis(2),
        watchdog: Duration::from_secs(10),
    }
}

/// Execute one run under replay `prefixes`, with full instrumentation.
/// Returns the digest, per-rank choice traces and per-rank event logs.
#[allow(clippy::type_complexity)]
fn run_once(
    case: &ModelCase,
    prefixes: &[Vec<usize>],
) -> Result<(u64, Vec<ChoiceTrace>, Vec<Vec<ProtocolEvent>>), String> {
    let p = case.cfg.p;
    let handles: Arc<Mutex<Vec<Option<TraceHandle>>>> = Arc::new(Mutex::new(vec![None; p]));
    let logs: Vec<EventLog> = (0..p).map(|_| new_event_log()).collect();
    let digest = match case.kill {
        None => {
            let handles_in = Arc::clone(&handles);
            let logs_in = logs.clone();
            run_digest_instrumented(
                &case.cfg,
                move |rank| {
                    let (policy, handle) =
                        ReplayPolicy::new(prefixes.get(rank).cloned().unwrap_or_default());
                    handles_in.lock().expect("handle table")[rank] = Some(handle);
                    Box::new(policy) as Box<dyn DeliveryPolicy>
                },
                move |rank| logs_in[rank].clone(),
            )
        }
        Some((kill_rank, kill_op)) => {
            let handles_in = Arc::clone(&handles);
            let logs_in = logs.clone();
            let outcome = run_with_takeover_instrumented(
                &case.cfg,
                &model_recovery_opts(),
                |attempt, rank| {
                    (attempt == 0 && rank == kill_rank).then(|| FaultPlan::kill_at(kill_op))
                },
                move |attempt, rank| {
                    // The replay prefix steers attempt 0 (where the kill
                    // fires); relaunches run the deterministic default
                    // order.
                    let prefix = if attempt == 0 {
                        prefixes.get(rank).cloned().unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    let (policy, handle) = ReplayPolicy::new(prefix);
                    if attempt == 0 {
                        handles_in.lock().expect("handle table")[rank] = Some(handle);
                    }
                    Box::new(policy) as Box<dyn DeliveryPolicy>
                },
                move |_attempt, rank| logs_in[rank].clone(),
            )
            .map_err(|e| format!("takeover run failed to complete: {e:?}"))?;
            outcome.digest
        }
    };
    let traces = handles
        .lock()
        .expect("handle table")
        .iter()
        .map(|h| {
            h.as_ref()
                .map(|h| h.lock().expect("trace").clone())
                .unwrap_or_default()
        })
        .collect();
    let events = logs
        .iter()
        .map(|l| l.lock().expect("event log").clone())
        .collect();
    Ok((digest, traces, events))
}

/// Model-check one case: DFS over replay prefixes with the configured
/// reduction, checking every property on every explored trace.
pub fn model_check(case: &ModelCase) -> Result<ModelOutcome, String> {
    let p = case.cfg.p;
    let mut out = ModelOutcome {
        label: case.label.clone(),
        mode: case.mode,
        runs: 0,
        exhausted: true,
        digests: BTreeSet::new(),
        distinct_states: 0,
        choice_points: 0,
        max_arity: 0,
        forks: 0,
        pruned_independent: 0,
        pruned_sleep: 0,
        pruned_visited: 0,
        unreduced_estimate: 1,
        events: 0,
        violations: Vec::new(),
    };
    // For takeover cases the explored digests must also equal the
    // fault-free reference — recovery parity folded into the digest set.
    if case.kill.is_some() {
        let reference = run_with_takeover(&case.cfg, &model_recovery_opts())
            .map_err(|e| format!("fault-free takeover reference failed: {e:?}"))?;
        out.digests.insert(reference.digest);
    }
    let mut seen_violations: BTreeSet<(&'static str, usize, String)> = BTreeSet::new();
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    // Sleep set: every prefix ever queued (explored or waiting).
    let mut queued: BTreeSet<Vec<Vec<usize>>> = BTreeSet::new();
    // What exhaustive DFS would have queued from the same runs.
    let mut brute_queued: BTreeSet<Vec<Vec<usize>>> = BTreeSet::new();
    let initial = vec![Vec::new(); p];
    queued.insert(initial.clone());
    let mut stack: Vec<Vec<Vec<usize>>> = vec![initial];
    while let Some(prefixes) = stack.pop() {
        if out.runs >= case.max_runs {
            out.exhausted = false;
            break;
        }
        let (digest, traces, logs) = run_once(case, &prefixes)?;
        out.runs += 1;
        out.digests.insert(digest);
        out.events += logs.iter().map(Vec::len).sum::<usize>();
        for v in check_all_properties(case.cfg.n_particles as u64, p, &logs) {
            if seen_violations.insert((v.property, v.rank, v.detail.clone())) {
                out.violations.push(v);
            }
        }
        if !visited.insert(state_hash(&logs)) {
            out.pruned_visited += 1;
            continue; // revisited state: nothing new can fork from here
        }
        out.distinct_states += 1;
        for rank in 0..p {
            let choices = choice_points(&logs[rank]);
            let consumed = consumption(&logs[rank]);
            let trace = &traces[rank];
            for (i, choice) in choices.iter().enumerate() {
                out.choice_points += 1;
                let arity = choice.candidates.len();
                out.max_arity = out.max_arity.max(arity);
                debug_assert!(
                    i >= trace.len() || trace[i].arity == arity,
                    "event log and choice trace disagree at rank {rank} choice {i}"
                );
                if arity < 2 || i < prefixes[rank].len() || i >= trace.len() {
                    continue;
                }
                for alt in 0..arity {
                    if alt == choice.taken {
                        continue;
                    }
                    let mut next = prefixes.clone();
                    next[rank] = trace[..i].iter().map(|c| c.taken).collect();
                    next[rank].push(alt);
                    brute_queued.insert(next.clone());
                    let fork = match case.mode {
                        Reduction::Exhaustive => true,
                        Reduction::Por => {
                            if dependent(choice, alt, &consumed) {
                                true
                            } else {
                                out.pruned_independent += 1;
                                false
                            }
                        }
                    };
                    if fork {
                        if queued.insert(next.clone()) {
                            stack.push(next);
                            out.forks += 1;
                        } else {
                            out.pruned_sleep += 1;
                        }
                    }
                }
            }
        }
    }
    out.unreduced_estimate = 1 + brute_queued.len();
    if out.digests.len() > 1 {
        out.violations.push(PropertyViolation {
            property: "digest-equality",
            rank: usize::MAX,
            detail: format!(
                "explored interleavings produced {} distinct digests: {:?}",
                out.digests.len(),
                out.digests
            ),
            trace: Vec::new(),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The standard case matrix
// ---------------------------------------------------------------------------

/// 2×2 model configuration: [`crate::explore::config_2x2`] with the
/// conservation sentinel active so `sentinel-conservation` has traffic.
fn model_config_2x2(steps: u64, overlap: bool) -> RunConfig {
    let mut cfg = crate::explore::config_2x2(steps);
    cfg.overlap = overlap;
    cfg.sentinel_interval = 3;
    cfg.checkpoint_interval = 2;
    cfg.validate();
    cfg
}

/// 3×3 model configuration: the clustered DLB workload of the takeover
/// sweep, shortened — the smallest grid where a takeover persona drives
/// two ranks through the full load/decision/cell-transfer protocol.
fn model_config_3x3(steps: u64, overlap: bool) -> RunConfig {
    let mut cfg = RunConfig::new(600, 9, 9, 0.05);
    cfg.lattice = Lattice::Cluster { fill: 0.5 };
    cfg.steps = steps;
    cfg.dlb = true;
    cfg.seed = 3;
    cfg.overlap = overlap;
    cfg.thermostat_interval = 4;
    cfg.checkpoint_interval = 3;
    cfg.sentinel_interval = 3;
    cfg.validate();
    cfg
}

/// The standard model-checking matrix driven by `pcdlb-check model`:
/// 2×2 exhaustive up to independence — POR that must *drain* (both
/// schedules, plus takeover) — and 3×3 POR-bounded (both schedules,
/// plus overlapped takeover). Fault-free cases must exhaust; the driver
/// gates takeover and 3×3 cases on the reported reduction factor.
pub fn standard_cases(
    steps_2x2: u64,
    steps_3x3: u64,
    max_runs_2x2: usize,
    max_runs_3x3: usize,
    grid: usize,
) -> Vec<ModelCase> {
    let mut cases = Vec::new();
    if grid == 0 || grid == 2 {
        cases.push(ModelCase {
            label: "2x2-overlapped".into(),
            cfg: model_config_2x2(steps_2x2, true),
            mode: Reduction::Por,
            max_runs: max_runs_2x2,
            kill: None,
        });
        cases.push(ModelCase {
            label: "2x2-sequenced".into(),
            cfg: model_config_2x2(steps_2x2, false),
            mode: Reduction::Por,
            max_runs: max_runs_2x2,
            kill: None,
        });
        cases.push(ModelCase {
            label: "2x2-overlapped-takeover".into(),
            cfg: model_config_2x2(steps_2x2, true),
            mode: Reduction::Por,
            max_runs: max_runs_3x3,
            kill: Some((1, 24)),
        });
    }
    if grid == 0 || grid == 3 {
        cases.push(ModelCase {
            label: "3x3-overlapped".into(),
            cfg: model_config_3x3(steps_3x3, true),
            mode: Reduction::Por,
            max_runs: max_runs_3x3,
            kill: None,
        });
        cases.push(ModelCase {
            label: "3x3-sequenced".into(),
            cfg: model_config_3x3(steps_3x3, false),
            mode: Reduction::Por,
            max_runs: max_runs_3x3,
            kill: None,
        });
        cases.push(ModelCase {
            label: "3x3-overlapped-takeover".into(),
            cfg: model_config_3x3(steps_3x3, true),
            mode: Reduction::Por,
            max_runs: max_runs_3x3,
            kill: Some((1, 24)),
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_send(src: usize, dst: usize, tag: Tag, seq: u64, epoch: u64) -> ProtocolEvent {
        ProtocolEvent::Send {
            src,
            dst,
            tag,
            seq,
            epoch,
        }
    }

    #[test]
    fn gapless_send_stream_passes_and_gap_fails() {
        let birth = ProtocolEvent::Birth { rank: 0 };
        let ok = vec![
            birth,
            ev_send(0, 1, 7, 0, 0),
            ev_send(0, 1, 7, 1, 0),
            ev_send(0, 2, 7, 0, 0),
        ];
        assert!(check_thread_properties(0, &ok).is_empty());
        let gap = vec![birth, ev_send(0, 1, 7, 0, 0), ev_send(0, 1, 7, 2, 0)];
        let v = check_thread_properties(0, &gap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "send-gapless");
        assert!(!v[0].trace.is_empty(), "violation carries its event window");
    }

    #[test]
    fn epoch_bump_resets_streams_and_regression_fails() {
        let ok = vec![
            ProtocolEvent::Birth { rank: 0 },
            ev_send(0, 1, 7, 0, 0),
            ev_send(0, 1, 7, 1, 0),
            ev_send(0, 1, 7, 0, 1), // epoch 1: stream restarts at 0
        ];
        assert!(check_thread_properties(0, &ok).is_empty());
        let regress = vec![
            ProtocolEvent::Birth { rank: 0 },
            ev_send(0, 1, 7, 0, 1),
            ev_send(0, 1, 7, 0, 0), // epoch went backwards
        ];
        let v = check_thread_properties(0, &regress);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "send-gapless");
    }

    #[test]
    fn ack_monotone_catches_regression_and_retransmit_below_cum() {
        let birth = ProtocolEvent::Birth { rank: 0 };
        let ok = vec![
            birth,
            ProtocolEvent::Retransmit {
                src: 0,
                dst: 1,
                rseq: 0,
            },
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 1,
            },
            ProtocolEvent::Retransmit {
                src: 0,
                dst: 1,
                rseq: 1,
            },
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 3,
            },
        ];
        assert!(check_thread_properties(0, &ok).is_empty());
        let regress = vec![
            birth,
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 3,
            },
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 2,
            },
        ];
        let v = check_thread_properties(0, &regress);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "ack-monotone");
        let stale_retx = vec![
            birth,
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 3,
            },
            ProtocolEvent::Retransmit {
                src: 0,
                dst: 1,
                rseq: 2,
            },
        ];
        let v = check_thread_properties(0, &stale_retx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "retransmit-valid");
    }

    #[test]
    fn suspicion_episodes_must_alternate_and_reset_on_epoch() {
        let birth = ProtocolEvent::Birth { rank: 0 };
        let ok = vec![
            birth,
            ProtocolEvent::Suspect { rank: 0, peer: 2 },
            ProtocolEvent::Unsuspect { rank: 0, peer: 2 },
            ProtocolEvent::Suspect { rank: 0, peer: 2 },
        ];
        assert!(check_thread_properties(0, &ok).is_empty());
        let double = vec![
            birth,
            ProtocolEvent::Suspect { rank: 0, peer: 2 },
            ProtocolEvent::Suspect { rank: 0, peer: 2 },
        ];
        let v = check_thread_properties(0, &double);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "suspect-episodic");
        let orphan_clear = vec![birth, ProtocolEvent::Unsuspect { rank: 0, peer: 2 }];
        let v = check_thread_properties(0, &orphan_clear);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "suspect-episodic");
        // advance_epoch clears detector state without an Unsuspect, and
        // the link's cumulative ack restarts at zero — neither is a
        // violation after an EpochAdvance.
        let epoch_reset = vec![
            birth,
            ProtocolEvent::Suspect { rank: 0, peer: 2 },
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 9,
            },
            ProtocolEvent::EpochAdvance { rank: 0, epoch: 1 },
            ProtocolEvent::Suspect { rank: 0, peer: 2 },
            ProtocolEvent::AckAdvance {
                src: 0,
                dst: 1,
                cum: 1,
            },
        ];
        assert!(check_thread_properties(0, &epoch_reset).is_empty());
    }

    #[test]
    fn birth_resets_all_stream_state() {
        let relaunch = vec![
            ProtocolEvent::Birth { rank: 0 },
            ev_send(0, 1, 7, 0, 0),
            ev_send(0, 1, 7, 1, 0),
            ProtocolEvent::Birth { rank: 0 },
            ev_send(0, 1, 7, 0, 0), // fresh world: seq restarts
        ];
        assert!(check_thread_properties(0, &relaunch).is_empty());
    }

    #[test]
    fn pool_double_checkin_and_leak_are_caught() {
        let double = vec![
            ProtocolEvent::Birth { rank: 0 },
            ProtocolEvent::PoolCheckout {
                pool: 1,
                slot: 0x10,
            },
            ProtocolEvent::PoolCheckin {
                pool: 1,
                slot: 0x10,
            },
            ProtocolEvent::PoolCheckin {
                pool: 1,
                slot: 0x10,
            },
        ];
        let v = check_thread_properties(0, &double);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "pool-balance");
        let leak = vec![
            ProtocolEvent::Birth { rank: 0 },
            ProtocolEvent::PoolCheckout {
                pool: 1,
                slot: 0x10,
            },
            ProtocolEvent::PoolDrop {
                pool: 1,
                panicking: false,
            },
        ];
        let v = check_thread_properties(0, &leak);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("still checked out"));
        // Unwind teardown legitimately abandons in-flight buffers.
        let unwind = vec![
            ProtocolEvent::Birth { rank: 0 },
            ProtocolEvent::PoolCheckout {
                pool: 1,
                slot: 0x10,
            },
            ProtocolEvent::PoolDrop {
                pool: 1,
                panicking: true,
            },
        ];
        assert!(check_thread_properties(0, &unwind).is_empty());
    }

    #[test]
    fn adopt_without_death_is_caught() {
        let logs = vec![vec![
            ProtocolEvent::Birth { rank: 0 },
            ProtocolEvent::Adopt { phys: 0, vrank: 1 },
        ]];
        let v = check_global_properties(100, 2, &logs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "adopt-once");
        let legal = vec![
            vec![
                ProtocolEvent::Birth { rank: 0 },
                ProtocolEvent::Adopt { phys: 0, vrank: 1 },
            ],
            vec![
                ProtocolEvent::Birth { rank: 1 },
                ProtocolEvent::Death { rank: 1 },
            ],
        ];
        assert!(check_global_properties(100, 2, &legal).is_empty());
    }

    #[test]
    fn sentinel_round_sum_mismatch_is_caught() {
        let logs = vec![
            vec![
                ProtocolEvent::Birth { rank: 0 },
                ProtocolEvent::Sentinel {
                    rank: 0,
                    step: 3,
                    count: 40,
                },
            ],
            vec![
                ProtocolEvent::Birth { rank: 1 },
                ProtocolEvent::Sentinel {
                    rank: 1,
                    step: 3,
                    count: 59, // one particle missing
                },
            ],
        ];
        let v = check_global_properties(100, 2, &logs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "sentinel-conservation");
        // Incomplete rounds (a rank died mid-gather) are not violations.
        let partial = vec![logs[0].clone()];
        assert!(check_global_properties(100, 2, &partial).is_empty());
    }

    #[test]
    fn choice_points_reconstruct_candidates_and_taken() {
        let events = vec![
            ProtocolEvent::Birth { rank: 2 },
            ProtocolEvent::Candidate {
                dst: 2,
                src: 0,
                tag: 7,
                seq: 0,
                epoch: 0,
            },
            ProtocolEvent::Deliver {
                dst: 2,
                src: 3,
                tag: 9,
                seq: 1,
                epoch: 0,
                arity: 2,
            },
        ];
        let cps = choice_points(&events);
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].candidates.len(), 2);
        assert_eq!(cps[0].taken, 1, "src 3 sorts after src 0");
    }

    #[test]
    fn blocking_consumption_is_independent_probe_is_dependent() {
        let choice = Choice {
            candidates: vec![(2, 0, 7, 0, 0), (2, 3, 9, 1, 0)],
            taken: 1,
        };
        let mut consumed = BTreeMap::new();
        consumed.insert((2, 0, 7, 0, 0), false);
        consumed.insert((2, 3, 9, 1, 0), false);
        assert!(!dependent(&choice, 0, &consumed), "both blocking: commute");
        consumed.insert((2, 0, 7, 0, 0), true);
        assert!(dependent(&choice, 0, &consumed), "probe consumption");
        consumed.remove(&(2, 0, 7, 0, 0));
        assert!(dependent(&choice, 0, &consumed), "unconsumed message");
    }
}

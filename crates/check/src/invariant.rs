//! Bounded search over reachable ownership states: the permanent-cell
//! invariant.
//!
//! The protocol's safety argument (paper Sec. 2.3) is that no sequence of
//! legal transfers can (a) move a permanent cell off its home PE, (b)
//! break the 8-neighbour adjacency of the domains, or (c) accumulate more
//! than `m² + 3(m−1)²` columns on one PE. This module checks that claim
//! *exhaustively* on small grids: breadth-first search over every
//! ownership state reachable through [`DlbProtocol::decide`], validating
//! each generated decision and each visited state.
//!
//! Simultaneous decisions in a real step touch disjoint columns (each
//! owner decides only about columns it owns, and ownership is unique in a
//! consistent view), so any state a multi-decision step reaches is also
//! reached by applying the decisions one at a time — singleton-step BFS
//! covers the full reachable set.

use std::collections::BTreeSet;

use pcdlb_core::permanent::is_permanent;
use pcdlb_core::protocol::{DlbProtocol, ProtocolError};
use pcdlb_domain::{OwnershipMap, PillarLayout};

/// Search bounds.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// Largest torus side to sweep (sides 3..=max; DLB needs ≥ 3).
    pub max_side: usize,
    /// Largest tile side `m` to sweep (1..=max).
    pub max_m: usize,
    /// State-count cap per `(side, m)` configuration; the reachable space
    /// is exponential in the movable-cell count, so larger configurations
    /// are explored up to this bound.
    pub max_states_per_config: usize,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self {
            max_side: 4,
            max_m: 3,
            max_states_per_config: 20_000,
        }
    }
}

/// What the search covered.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// `(side, m)` configurations swept.
    pub configs: usize,
    /// Total ownership states visited and checked.
    pub states_visited: usize,
    /// Configurations whose state space was truncated by the cap.
    pub truncated: usize,
}

/// Check one ownership state against the paper's invariants: the
/// structural checks of [`OwnershipMap::check_all`], permanent cells at
/// home, and the accumulation limit.
pub fn check_state(layout: &PillarLayout, om: &OwnershipMap) -> Result<(), String> {
    om.check_all()?;
    for col in layout.grid().iter() {
        if is_permanent(layout, col) && om.owner_of(col) != layout.home_rank(col) {
            return Err(format!(
                "permanent cell {col:?} moved from home {} to {}",
                layout.home_rank(col),
                om.owner_of(col)
            ));
        }
    }
    let m = layout.m();
    let limit = m * m + 3 * (m - 1) * (m - 1);
    for r in 0..layout.num_ranks() {
        let owned = om.num_owned(r);
        if owned > limit {
            return Err(format!(
                "rank {r} owns {owned} columns, above the DLB limit {limit}"
            ));
        }
    }
    Ok(())
}

/// BFS over reachable states of one `(side, m)` configuration. Returns
/// `(states visited, truncated?)`, or the first invariant violation.
fn search_config(side: usize, m: usize, cap: usize) -> Result<(usize, bool), String> {
    let layout = PillarLayout::from_p_and_m(side * side, m);
    let torus = layout.torus();
    let p = layout.num_ranks();
    let initial = OwnershipMap::initial(layout);
    check_state(&layout, &initial)
        .map_err(|e| format!("side {side}, m {m}: initial state: {e}"))?;
    let key = |om: &OwnershipMap| -> Vec<u16> {
        layout
            .grid()
            .iter()
            .map(|c| om.owner_of(c) as u16)
            .collect()
    };
    let mut visited: BTreeSet<Vec<u16>> = BTreeSet::new();
    visited.insert(key(&initial));
    let mut frontier = vec![initial];
    let mut truncated = false;
    'bfs: while let Some(om) = frontier.pop() {
        for r in 0..p {
            let proto = DlbProtocol::new(layout, r);
            for nb in torus.distinct_neighbors8(r) {
                let Some(d) = proto.decide(&om, nb) else {
                    continue;
                };
                // Every decision the protocol produces on a reachable
                // state must validate.
                if let Err(e) = DlbProtocol::validate(&layout, &om, &d) {
                    return Err(format!(
                        "side {side}, m {m}: decide produced an illegal transfer: {e}"
                    ));
                }
                let mut next = om.clone();
                DlbProtocol::apply(&mut next, &d);
                if !visited.insert(key(&next)) {
                    continue;
                }
                check_state(&layout, &next).map_err(|e| {
                    format!("side {side}, m {m}: reachable state violates invariant: {e}")
                })?;
                if visited.len() >= cap {
                    truncated = true;
                    break 'bfs;
                }
                frontier.push(next);
            }
        }
    }
    Ok((visited.len(), truncated))
}

/// Sweep all `(side, m)` configurations within the bounds.
pub fn verify_invariant(cfg: &InvariantConfig) -> Result<InvariantReport, String> {
    let mut report = InvariantReport::default();
    for side in 3..=cfg.max_side.max(3) {
        for m in 1..=cfg.max_m.max(1) {
            let (states, truncated) = search_config(side, m, cfg.max_states_per_config)?;
            report.configs += 1;
            report.states_visited += states;
            if truncated {
                report.truncated += 1;
            }
        }
    }
    Ok(report)
}

/// Re-export used by the negative tests to build illegal decisions.
pub use pcdlb_core::protocol::DlbDecision;

/// Convenience for tests: validate a decision and return the typed error.
pub fn validate_decision(
    layout: &PillarLayout,
    om: &OwnershipMap,
    d: &DlbDecision,
) -> Result<(), ProtocolError> {
    DlbProtocol::validate(layout, om, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_search_on_trivial_movable_space() {
        // m = 1: no movable cells, exactly one reachable state per grid.
        let r = verify_invariant(&InvariantConfig {
            max_side: 4,
            max_m: 1,
            max_states_per_config: 100,
        })
        .expect("invariant holds");
        assert_eq!(r.configs, 2);
        assert_eq!(r.states_visited, 2);
        assert_eq!(r.truncated, 0);
    }

    #[test]
    fn m2_state_space_is_explored_beyond_the_initial_state() {
        let r = verify_invariant(&InvariantConfig {
            max_side: 3,
            max_m: 2,
            max_states_per_config: 5_000,
        })
        .expect("invariant holds");
        // 9 movable columns, each at home or lent: much more than 1 state.
        assert!(r.states_visited > 100, "visited {}", r.states_visited);
    }

    #[test]
    fn cap_truncates_gracefully() {
        let r = verify_invariant(&InvariantConfig {
            max_side: 3,
            max_m: 3,
            max_states_per_config: 50,
        })
        .expect("invariant holds on the visited prefix");
        assert!(r.truncated > 0);
    }

    #[test]
    fn giveaway_state_fails_check() {
        // Force a permanent cell off its home: check_state must object.
        let layout = PillarLayout::from_p_and_m(9, 2);
        let mut om = OwnershipMap::initial(layout);
        let me = layout.torus().rank_wrapped(1, 1);
        let origin = layout.tile_origin(me);
        // (m−1, m−1) offset = the SE corner = permanent.
        let perm = pcdlb_domain::Col::new(origin.cx + 1, origin.cy + 1);
        assert!(is_permanent(&layout, perm));
        om.set_owner(perm, layout.torus().rank_wrapped(0, 1));
        let err = check_state(&layout, &om).expect_err("giveaway must be caught");
        assert!(
            err.contains("permanent") || err.contains("distance"),
            "{err}"
        );
    }
}

//! The `pcdlb-check` command-line driver.
//!
//! ```text
//! pcdlb-check verify     [--max-side N] [--max-m M] [--max-states K]
//! pcdlb-check interleave [--steps S] [--dfs-runs N] [--seeded-runs N]
//! pcdlb-check faults     [--stride N] [--seeds N] [--timeout-s N]
//! pcdlb-check takeover   [--stride N] [--max-side N] [--timeout-s N]
//! pcdlb-check resize     [--stride N] [--timeout-s N]
//! pcdlb-check chaos      [--seeds N] [--timeout-s N]
//! pcdlb-check model      [--steps S] [--steps-3x3 S] [--max-runs N]
//!                        [--runs-3x3 N] [--grid 0|2|3]
//! pcdlb-check lint       [--root PATH] [--strict-allow]
//! pcdlb-check all
//! ```
//!
//! Exit status 0 means every requested check passed; 1 means at least
//! one violation (or bad usage). Run from the repo root (CI does).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use pcdlb_check::chaos::chaos_sweep_with_timeout;
use pcdlb_check::explore::{config_2x2, config_2x2_sequenced, explore};
use pcdlb_check::faults::fault_sweep_with_timeout;
use pcdlb_check::invariant::{verify_invariant, InvariantConfig};
use pcdlb_check::lint::run_lints;
use pcdlb_check::model::{model_check, standard_cases, Reduction};
use pcdlb_check::resize::resize_sweep_with_timeout;
use pcdlb_check::takeover::takeover_sweep_with_timeout;
use pcdlb_check::verify::verify_protocol;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "verify" => cmd_verify(rest),
        "interleave" => cmd_interleave(rest),
        "faults" => cmd_faults(rest),
        "takeover" => cmd_takeover(rest),
        "resize" => cmd_resize(rest),
        "chaos" => cmd_chaos(rest),
        "model" => cmd_model(rest),
        "lint" => cmd_lint(rest),
        "all" => cmd_verify(&[])
            .and_then(|()| cmd_interleave(&[]))
            .and_then(|()| cmd_faults(&[]))
            .and_then(|()| cmd_takeover(&[]))
            .and_then(|()| cmd_resize(&[]))
            .and_then(|()| cmd_chaos(&[]))
            .and_then(|()| cmd_model(&[]))
            .and_then(|()| cmd_lint(&["--strict-allow".to_string()])),
        "--help" | "-h" | "help" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pcdlb-check: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: pcdlb-check <verify|interleave|faults|takeover|resize|chaos|model|lint|all> [options]\n\
         \n\
         verify     static protocol verification: tag table, send/recv\n\
         \u{20}          matching, deadlock freedom on all grids up to --max-side\n\
         \u{20}          (default 6), and the permanent-cell invariant search up\n\
         \u{20}          to --max-m (default 3), --max-states (default 20000)\n\
         interleave determinism check: explore message-delivery orders on a\n\
         \u{20}          2x2 PE run (--steps 6 --dfs-runs 24 --seeded-runs 24),\n\
         \u{20}          sweeping both the overlapped and sequenced schedules\n\
         \u{20}          and requiring a single common digest\n\
         faults     crash-recovery parity sweep: kill each rank of a 2x2 run\n\
         \u{20}          at every --stride'th send op (default 16) plus --seeds\n\
         \u{20}          (default 6) seeded mixed-fault schedules, all under a\n\
         \u{20}          global --timeout-s (default 600) no-hang deadline\n\
         takeover   degraded-mode takeover check: static buddy-map and\n\
         \u{20}          merged dual-role schedule verification up to --max-side\n\
         \u{20}          (default 6), then kill each rank of a 2x2 and a 3x3 run\n\
         \u{20}          at every --stride'th send op (default 32) asserting\n\
         \u{20}          bitwise recovery parity, under --timeout-s (default 900)\n\
         resize     elastic-resize sweep: shrink/grow parity plans at several\n\
         \u{20}          boundaries on two grids (serial/plane/cube bitwise\n\
         \u{20}          parity), then kill every drain-gather contributor,\n\
         \u{20}          every resize-barrier participant, and each rank of each\n\
         \u{20}          generation at every --stride'th send op (default 24),\n\
         \u{20}          under --timeout-s (default 900)\n\
         chaos      transport-chaos sweep: --seeds (default 3) disturbance\n\
         \u{20}          seeds x loss rates over the lossy transport on all three\n\
         \u{20}          decompositions, asserting bitwise serial parity, a healed\n\
         \u{20}          partition window, a takeover-escalating permanent\n\
         \u{20}          isolation, and an inert reliable baseline, under\n\
         \u{20}          --timeout-s (default 600)\n\
         model      stateful protocol model checker: DFS over delivery\n\
         \u{20}          interleavings with partial-order reduction, checking the\n\
         \u{20}          typed safety properties (seq gaplessness, non-overtaking,\n\
         \u{20}          epoch monotonicity, pool balance, single adoption,\n\
         \u{20}          sentinel conservation) on every explored trace; matrix of\n\
         \u{20}          2x2 drained-frontier + 3x3 budget-bounded POR cases,\n\
         \u{20}          both schedules, with and\n\
         \u{20}          without takeover (--steps 6 --steps-3x3 6 --max-runs 200\n\
         \u{20}          --runs-3x3 10 --grid 0|2|3); emits a JSON summary line\n\
         lint       hazard lint over the repo tree (--root .); --strict-allow\n\
         \u{20}          also fails on allowlist entries matching no source line"
    );
}

/// Parse `--key value` options, all integers, with defaults.
fn opts(rest: &[String], keys: &[(&str, usize)]) -> Result<Vec<usize>, String> {
    let mut vals: Vec<usize> = keys.iter().map(|&(_, d)| d).collect();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let pos = keys
            .iter()
            .position(|&(k, _)| k == flag)
            .ok_or_else(|| format!("unknown option `{flag}`"))?;
        let val = it.next().ok_or_else(|| format!("`{flag}` needs a value"))?;
        vals[pos] = val
            .parse()
            .map_err(|_| format!("`{flag}` needs an integer, got `{val}`"))?;
    }
    Ok(vals)
}

fn cmd_verify(rest: &[String]) -> Result<(), String> {
    let v = opts(
        rest,
        &[("--max-side", 6), ("--max-m", 3), ("--max-states", 20_000)],
    )?;
    let (max_side, max_m, max_states) = (v[0], v[1], v[2]);
    let report = verify_protocol(max_side);
    println!(
        "verify: {} schedules over sides {:?} checked",
        report.schedules_checked, report.sides
    );
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("  {v}");
        }
        return Err(format!("{} protocol violation(s)", report.violations.len()));
    }
    let inv = verify_invariant(&InvariantConfig {
        max_side: max_side.min(4),
        max_m,
        max_states_per_config: max_states,
    })
    .map_err(|e| format!("permanent-cell invariant violated: {e}"))?;
    println!(
        "verify: permanent-cell invariant holds over {} states in {} configs{}",
        inv.states_visited,
        inv.configs,
        if inv.truncated > 0 {
            format!(" ({} truncated at the state cap)", inv.truncated)
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_interleave(rest: &[String]) -> Result<(), String> {
    let v = opts(
        rest,
        &[("--steps", 6), ("--dfs-runs", 24), ("--seeded-runs", 24)],
    )?;
    // Two sweeps: the overlapped schedule (interior forces race ghost
    // delivery) and the sequenced recv-then-compute schedule. Each must
    // be delivery-order independent, and both must land on the same
    // digest — no interleaving may make the overlap observable.
    let mut digests = std::collections::BTreeSet::new();
    for (label, cfg) in [
        ("overlapped", config_2x2(v[0] as u64)),
        ("sequenced", config_2x2_sequenced(v[0] as u64)),
    ] {
        let out = explore(&cfg, v[1], v[2]);
        println!(
            "interleave[{label}]: {} runs, {} distinct delivery orders (max arity {}), {} digest(s)",
            out.runs,
            out.distinct_orders,
            out.max_arity,
            out.digests.len()
        );
        if out.digests.len() != 1 {
            return Err(format!(
                "{label} simulation digest depends on message-delivery order: {:?}",
                out.digests
            ));
        }
        digests.extend(out.digests);
    }
    if digests.len() != 1 {
        return Err(format!(
            "overlapped and sequenced schedules disagree: {digests:?}"
        ));
    }
    Ok(())
}

fn cmd_faults(rest: &[String]) -> Result<(), String> {
    let v = opts(
        rest,
        &[("--stride", 16), ("--seeds", 6), ("--timeout-s", 600)],
    )?;
    let (stride, seeds, timeout_s) = (v[0] as u64, v[1], v[2] as u64);
    let out = fault_sweep_with_timeout(stride, seeds, Duration::from_secs(timeout_s))?;
    println!(
        "faults: {} kill-point runs ({} fired), {} checkpoint-phase kills ({} fired), {} seeded runs ({} faulted), reference digest {:#018x}",
        out.kill_runs,
        out.kills_fired,
        out.ckpt_runs,
        out.ckpt_kills_fired,
        out.seeded_runs,
        out.faults_fired,
        out.reference_digest
    );
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("  {v}");
        }
        return Err(format!(
            "{} recovery-parity violation(s)",
            out.violations.len()
        ));
    }
    Ok(())
}

fn cmd_takeover(rest: &[String]) -> Result<(), String> {
    let v = opts(
        rest,
        &[("--stride", 32), ("--max-side", 6), ("--timeout-s", 900)],
    )?;
    let (stride, max_side, timeout_s) = (v[0] as u64, v[1], v[2] as u64);
    let out = takeover_sweep_with_timeout(stride, max_side, Duration::from_secs(timeout_s))?;
    println!(
        "takeover: {} buddy cases, {} merged schedules, {} kill runs ({} fired: {} degraded, {} relaunched), {} second-death run(s)",
        out.buddy_checks,
        out.merged_schedules,
        out.kill_runs,
        out.kills_fired,
        out.degraded,
        out.relaunched,
        out.second_death_runs
    );
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("  {v}");
        }
        return Err(format!("{} takeover violation(s)", out.violations.len()));
    }
    Ok(())
}

fn cmd_resize(rest: &[String]) -> Result<(), String> {
    let v = opts(rest, &[("--stride", 24), ("--timeout-s", 900)])?;
    let (stride, timeout_s) = (v[0] as u64, v[1] as u64);
    let out = resize_sweep_with_timeout(stride, Duration::from_secs(timeout_s))?;
    println!(
        "resize: {} parity plans, {} drain kills ({} fired), {} barrier kills ({} fired), {} kill-point runs ({} fired), reference digest {:#018x}",
        out.parity_runs,
        out.drain_runs,
        out.drain_kills_fired,
        out.barrier_runs,
        out.barrier_kills_fired,
        out.kill_runs,
        out.kills_fired,
        out.reference_digest
    );
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("  {v}");
        }
        return Err(format!(
            "{} elastic-resize violation(s)",
            out.violations.len()
        ));
    }
    Ok(())
}

fn cmd_chaos(rest: &[String]) -> Result<(), String> {
    let v = opts(rest, &[("--seeds", 3), ("--timeout-s", 600)])?;
    let (seeds, timeout_s) = (v[0] as u64, v[1] as u64);
    let out = chaos_sweep_with_timeout(seeds, Duration::from_secs(timeout_s))?;
    println!(
        "chaos: {} lossy parity runs, {} healed partition(s), {} takeover partition(s), {} reliable baseline run(s), {} retransmit(s), {} suspicion(s)",
        out.parity_runs,
        out.healed_partitions,
        out.takeover_partitions,
        out.inproc_runs,
        out.retransmits,
        out.suspicions
    );
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("  {v}");
        }
        return Err(format!(
            "{} transport-chaos violation(s)",
            out.violations.len()
        ));
    }
    Ok(())
}

fn cmd_model(rest: &[String]) -> Result<(), String> {
    let v = opts(
        rest,
        &[
            ("--steps", 6),
            ("--steps-3x3", 6),
            ("--max-runs", 200),
            ("--runs-3x3", 10),
            ("--grid", 0),
        ],
    )?;
    let (steps_2x2, steps_3x3, max_runs, runs_3x3, grid) =
        (v[0] as u64, v[1] as u64, v[2], v[3], v[4]);
    if grid != 0 && grid != 2 && grid != 3 {
        return Err(format!("`--grid` must be 0 (all), 2 or 3, got {grid}"));
    }
    let cases = standard_cases(steps_2x2, steps_3x3, max_runs, runs_3x3, grid);
    let mut failures: Vec<String> = Vec::new();
    let mut json_cases: Vec<String> = Vec::new();
    for case in &cases {
        let out = model_check(case)?;
        let mode = match out.mode {
            Reduction::Exhaustive => "exhaustive",
            Reduction::Por => "por",
        };
        println!(
            "model[{}]: {} runs ({}, {}), {} states, {} choice points (max arity {}), \
             {} forks, pruned {} independent / {} sleep / {} visited, \
             unreduced >= {} ({:.1}x reduction), {} events, {} digest(s), {} violation(s)",
            out.label,
            out.runs,
            mode,
            if out.exhausted {
                "exhausted"
            } else {
                "budget-capped"
            },
            out.distinct_states,
            out.choice_points,
            out.max_arity,
            out.forks,
            out.pruned_independent,
            out.pruned_sleep,
            out.pruned_visited,
            out.unreduced_estimate,
            out.reduction_factor(),
            out.events,
            out.digests.len(),
            out.violations.len(),
        );
        for viol in &out.violations {
            eprintln!("  {viol}");
        }
        json_cases.push(format!(
            "{{\"label\":\"{}\",\"mode\":\"{}\",\"runs\":{},\"exhausted\":{},\
             \"distinct_states\":{},\"choice_points\":{},\"max_arity\":{},\"forks\":{},\
             \"pruned_independent\":{},\"pruned_sleep\":{},\"pruned_visited\":{},\
             \"unreduced_estimate\":{},\"reduction_factor\":{:.2},\"events\":{},\
             \"digests\":{},\"violations\":{}}}",
            out.label,
            mode,
            out.runs,
            out.exhausted,
            out.distinct_states,
            out.choice_points,
            out.max_arity,
            out.forks,
            out.pruned_independent,
            out.pruned_sleep,
            out.pruned_visited,
            out.unreduced_estimate,
            out.reduction_factor(),
            out.events,
            out.digests.len(),
            out.violations.len(),
        ));
        if !out.violations.is_empty() {
            failures.push(format!(
                "{}: {} property violation(s)",
                out.label,
                out.violations.len()
            ));
        }
        if case.kill.is_none() && !out.exhausted {
            failures.push(format!(
                "{}: DPOR frontier did not drain within {} runs — fault-free \
                 cases must be verified exhaustively up to independence",
                out.label, case.max_runs
            ));
        }
        if (case.kill.is_some() || out.label.starts_with("3x3")) && out.reduction_factor() < 10.0 {
            failures.push(format!(
                "{}: partial-order reduction only {:.1}x (< 10x required)",
                out.label,
                out.reduction_factor()
            ));
        }
    }
    println!("{{\"model\":{{\"cases\":[{}]}}}}", json_cases.join(","));
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn cmd_lint(rest: &[String]) -> Result<(), String> {
    let mut root = PathBuf::from(".");
    let mut strict_allow = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("`--root` needs a path")?);
            }
            "--strict-allow" => strict_allow = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !root.is_dir() {
        return Err(format!("lint root `{}` is not a directory", root.display()));
    }
    let report = run_lints(&root).map_err(|e| format!("lint I/O error: {e}"))?;
    if report.files_scanned == 0 {
        return Err(format!(
            "lint scanned no .rs files under `{}` — wrong --root?",
            root.display()
        ));
    }
    println!(
        "lint: {} files scanned, {} finding(s), {} suppressed by allowlist, {} dead allow(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        report.dead_allows.len()
    );
    if !report.findings.is_empty() {
        for f in &report.findings {
            eprintln!("  {f}");
        }
        return Err(format!("{} lint violation(s)", report.findings.len()));
    }
    if strict_allow && !report.dead_allows.is_empty() {
        for d in &report.dead_allows {
            eprintln!("  dead allowlist entry: {d}");
        }
        return Err(format!(
            "{} allowlist entr(y/ies) suppress nothing — remove them from lint-allow.txt",
            report.dead_allows.len()
        ));
    }
    Ok(())
}

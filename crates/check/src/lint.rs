//! Repo lint pass for determinism and protocol-robustness hazards.
//!
//! Seven rules, each scoped to the code where the hazard is real:
//!
//! - `wallclock-in-deterministic-crate`: no `Instant::now` / `SystemTime`
//!   in `pcdlb-md`, `pcdlb-core`, `pcdlb-domain`, `pcdlb-sim`. Physics and
//!   protocol decisions must be wall-clock free; the only sanctioned clock
//!   access is `pcdlb-sim`'s `clock` module, which is feature-gated and
//!   allowlisted in `lint-allow.txt`.
//! - `hash-iteration-in-protocol-code`: no `HashMap`/`HashSet` in
//!   `pcdlb-mp`, `pcdlb-sim` or the protocol module — hash iteration
//!   order varies between runs, which silently breaks bitwise
//!   reproducibility when it reaches message payloads or summation order.
//! - `unwrap-in-send-recv-path`: no bare `.unwrap()` on the send/recv
//!   paths (`comm`, `world`, `collectives`, `channel`, `fault`) or in
//!   the protocol module; failures there must carry a message (`expect`)
//!   or a typed error (`ProtocolError`).
//! - `expect-in-send-recv-path`: every `.expect(...)` on those same paths
//!   is a panic site a transport fault might reach. Each one must either
//!   be converted to a structured `CommError` or individually audited and
//!   allowlisted as guarding a local invariant (a poisoned lock, a
//!   just-checked index) that no remote input can violate.
//! - `unbounded-recv-in-recovery-path`: no indefinitely blocking
//!   `.recv(...)` in the files recovery and takeover flow through
//!   (`pe.rs`, `recover.rs`, `takeover.rs` in `pcdlb-sim`). A recovery
//!   path waiting forever on a peer that may already be dead defeats the
//!   no-hang guarantee; waits there must be `recv_deadline` (which
//!   escalates to a world abort) or an audited step-schedule receive
//!   whose matching send the static verifier proves and whose liveness
//!   the watchdog bounds — each allowlisted individually.
//! - `per-step-allocation-in-hot-path`: no allocating constructors
//!   (`Vec::new`, `vec![`, `BTreeMap::new`, `BTreeSet::new`, `.to_vec()`,
//!   `.collect()`) in the files the steady-state step flows through
//!   (`frame.rs`, `pe.rs`, `takeover.rs` in `pcdlb-sim`). The overlapped
//!   step is
//!   allocation-free by construction — pooled frames, retained scratch —
//!   and a stray allocation silently reintroduces per-step heap churn.
//!   Cold paths (scaffolding, checkpointing, recovery, reporting) are
//!   audited line by line in `lint-allow.txt`.
//! - `hardcoded-duration-in-comm-path`: no inline `Duration::from_*`
//!   literals in the communication and recovery paths (`comm.rs`,
//!   `world.rs`, `transport.rs` in `pcdlb-mp`; `recover.rs` in
//!   `pcdlb-sim`). Timing knobs there — polls, watchdogs, retransmit
//!   backoffs, heartbeat and suspicion horizons — must flow from the
//!   named `DEFAULT_*` constants and `CommConfig`/`RecoveryOptions` so
//!   callers can tune them; a literal buried mid-function is an
//!   untunable magic timeout. The sanctioned definitions of the default
//!   constants themselves are allowlisted individually.
//!
//! The scanner is textual by design (no rustc plumbing): it skips
//! `#[cfg(test)]` blocks by brace counting and strips `//` comments
//! before matching. Justified exceptions go in `lint-allow.txt` at the
//! repo root: `rule  path-suffix  line-substring` per line.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: &'static str,
    /// File containing the hit.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.snippet
        )
    }
}

/// Outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Violations (after allowlist filtering).
    pub findings: Vec<LintFinding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by the allowlist.
    pub suppressed: usize,
    /// Allowlist entries that suppressed nothing — stale audits whose
    /// code has since been fixed or removed. Rendered as the original
    /// `rule  path-suffix  line-substring` lines. `--strict-allow` turns
    /// these into failures so the allowlist can only shrink with the
    /// code it audits.
    pub dead_allows: Vec<String>,
}

struct Rule {
    name: &'static str,
    /// Directories (relative to the repo root) whose `.rs` files are in
    /// scope.
    dirs: &'static [&'static str],
    /// Individual files in scope.
    files: &'static [&'static str],
    /// Substrings that constitute a violation.
    patterns: &'static [&'static str],
}

const RULES: &[Rule] = &[
    Rule {
        name: "wallclock-in-deterministic-crate",
        dirs: &[
            "crates/md/src",
            "crates/core/src",
            "crates/domain/src",
            "crates/sim/src",
        ],
        files: &[],
        patterns: &["Instant::now", "SystemTime"],
    },
    Rule {
        name: "hash-iteration-in-protocol-code",
        dirs: &["crates/mp/src", "crates/sim/src"],
        files: &["crates/core/src/protocol.rs"],
        patterns: &["HashMap", "HashSet"],
    },
    Rule {
        name: "unwrap-in-send-recv-path",
        dirs: &[],
        files: &[
            "crates/mp/src/comm.rs",
            "crates/mp/src/world.rs",
            "crates/mp/src/collectives.rs",
            "crates/mp/src/channel.rs",
            "crates/mp/src/fault.rs",
            "crates/core/src/protocol.rs",
        ],
        patterns: &[".unwrap()"],
    },
    Rule {
        name: "expect-in-send-recv-path",
        dirs: &[],
        files: &[
            "crates/mp/src/comm.rs",
            "crates/mp/src/world.rs",
            "crates/mp/src/collectives.rs",
            "crates/mp/src/channel.rs",
            "crates/mp/src/fault.rs",
            "crates/core/src/protocol.rs",
        ],
        patterns: &[".expect("],
    },
    Rule {
        name: "unbounded-recv-in-recovery-path",
        dirs: &[],
        files: &[
            "crates/sim/src/pe.rs",
            "crates/sim/src/recover.rs",
            "crates/sim/src/takeover.rs",
        ],
        // `.recv(` / `.recv::<` match the indefinitely blocking receive
        // only: `recv_deadline` and `try_recv` have a different character
        // after "recv" and stay legal.
        patterns: &[".recv(", ".recv::<"],
    },
    Rule {
        name: "per-step-allocation-in-hot-path",
        dirs: &[],
        files: &[
            "crates/sim/src/frame.rs",
            "crates/sim/src/pe.rs",
            "crates/sim/src/takeover.rs",
            // The SoA/Verlet force path runs every step: scratch must be
            // retained (reset + reuse), never reallocated per pass.
            "crates/md/src/soa.rs",
            "crates/md/src/verlet.rs",
        ],
        patterns: &[
            "Vec::new(",
            "vec![",
            "BTreeMap::new(",
            "BTreeSet::new(",
            ".to_vec()",
            ".collect()",
        ],
    },
    Rule {
        name: "hardcoded-duration-in-comm-path",
        dirs: &[],
        files: &[
            "crates/mp/src/comm.rs",
            "crates/mp/src/world.rs",
            "crates/mp/src/transport.rs",
            "crates/sim/src/recover.rs",
        ],
        // Integer-literal constructors only: `from_secs_f64(` has a
        // different suffix and stays legal (virtual-time arithmetic).
        patterns: &[
            "Duration::from_millis(",
            "Duration::from_secs(",
            "Duration::from_micros(",
            "Duration::from_nanos(",
        ],
    },
];

/// One allowlist entry: suppress `rule` findings in files ending with
/// `file_suffix` on lines containing `substring`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name, or `*` for any rule.
    pub rule: String,
    /// Path suffix the file must end with.
    pub file_suffix: String,
    /// Substring the offending line must contain.
    pub substring: String,
}

/// Parse `lint-allow.txt` content. Lines are
/// `rule  path-suffix  line-substring`; `#` starts a comment.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        if let (Some(rule), Some(suffix), Some(sub)) = (parts.next(), parts.next(), parts.next()) {
            out.push(AllowEntry {
                rule: rule.to_string(),
                file_suffix: suffix.to_string(),
                substring: sub.trim().to_string(),
            });
        }
    }
    out
}

/// Index of the first allowlist entry suppressing `finding`, if any.
fn allowed(entry: &[AllowEntry], finding: &LintFinding) -> Option<usize> {
    let path = finding.file.to_string_lossy().replace('\\', "/");
    entry.iter().position(|e| {
        (e.rule == "*" || e.rule == finding.rule)
            && path.ends_with(&e.file_suffix)
            && finding.snippet.contains(&e.substring)
    })
}

/// Collect `.rs` files under `dir`, recursively, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan one file's source against one rule.
fn scan_source(rule: &Rule, file: &Path, source: &str, findings: &mut Vec<LintFinding>) {
    // `#[cfg(test)]` skipping: after the attribute, skip the next item —
    // either a braced block (tracked by brace depth) or a single
    // `;`-terminated line.
    let mut pending_skip = false;
    let mut depth = 0usize;
    for (idx, raw) in source.lines().enumerate() {
        let code = raw.split("//").next().unwrap_or("");
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if depth > 0 {
            depth = (depth + opens).saturating_sub(closes);
            continue;
        }
        if pending_skip {
            if opens > closes {
                depth = opens - closes;
                pending_skip = false;
            } else if code.contains(';') || opens > 0 {
                pending_skip = false;
            }
            continue;
        }
        if code.trim_start().starts_with("#[cfg(test)") {
            pending_skip = true;
            continue;
        }
        for pat in rule.patterns {
            if code.contains(pat) {
                findings.push(LintFinding {
                    rule: rule.name,
                    file: file.to_path_buf(),
                    line: idx + 1,
                    snippet: raw.trim().to_string(),
                });
            }
        }
    }
}

/// Run every rule against the tree rooted at `root`, applying the
/// allowlist at `root/lint-allow.txt` if present.
pub fn run_lints(root: &Path) -> io::Result<LintReport> {
    let allow = match fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut report = LintReport::default();
    let mut entry_hits = vec![0usize; allow.len()];
    for rule in RULES {
        let mut files: Vec<PathBuf> = Vec::new();
        for d in rule.dirs {
            rs_files(&root.join(d), &mut files)?;
        }
        for f in rule.files {
            let p = root.join(f);
            if p.is_file() {
                files.push(p);
            }
        }
        report.files_scanned += files.len();
        for file in &files {
            let source = fs::read_to_string(file)?;
            let mut found = Vec::new();
            scan_source(rule, file, &source, &mut found);
            for f in found {
                if let Some(i) = allowed(&allow, &f) {
                    entry_hits[i] += 1;
                    report.suppressed += 1;
                } else {
                    report.findings.push(f);
                }
            }
        }
    }
    report.dead_allows = allow
        .iter()
        .zip(&entry_hits)
        .filter(|&(_, &hits)| hits == 0)
        .map(|(e, _)| format!("{}  {}  {}", e.rule, e.file_suffix, e.substring))
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A scratch repo tree with the given `(relative path, contents)`
    /// files; removed on drop.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(files: &[(&str, &str)]) -> Self {
            let root = std::env::temp_dir().join(format!(
                "pcdlb-lint-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            for (rel, contents) in files {
                let path = root.join(rel);
                fs::create_dir_all(path.parent().expect("fixture files have parents"))
                    .expect("mkdir fixture");
                fs::write(&path, contents).expect("write fixture");
            }
            Self { root }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn clean_tree_has_no_findings() {
        let fx = Fixture::new(&[(
            "crates/md/src/lib.rs",
            "pub fn f() -> u64 { 42 } // no clocks here\n",
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert!(r.findings.is_empty());
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn wallclock_in_md_is_flagged() {
        let fx = Fixture::new(&[(
            "crates/md/src/force.rs",
            "use std::time::Instant;\npub fn t() { let _ = Instant::now(); }\n",
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "wallclock-in-deterministic-crate");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn hash_collections_in_mp_are_flagged() {
        let fx = Fixture::new(&[(
            "crates/mp/src/comm.rs",
            "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n",
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert_eq!(r.findings.len(), 2);
        assert!(r
            .findings
            .iter()
            .all(|f| f.rule == "hash-iteration-in-protocol-code"));
    }

    #[test]
    fn unwrap_on_send_path_is_flagged_but_not_in_tests() {
        let fx = Fixture::new(&[(
            "crates/mp/src/comm.rs",
            concat!(
                "pub fn recv() { q.pop().unwrap(); }\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    fn ok() { x.unwrap(); }\n",
                "    fn also_ok() { y.unwrap(); }\n",
                "}\n",
                "pub fn send() { tx.send(v).unwrap(); }\n",
            ),
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        let lines: Vec<usize> = r
            .findings
            .iter()
            .filter(|f| f.rule == "unwrap-in-send-recv-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![1, 7], "test-module unwraps must be skipped");
    }

    #[test]
    fn expect_on_send_path_is_flagged_unless_allowlisted() {
        let fx = Fixture::new(&[
            (
                "crates/mp/src/fault.rs",
                concat!(
                    "fn arm() { plan.sites.first().expect(\"plan is non-empty\"); }\n",
                    "fn ok() { self.state.lock().expect(\"mutex poisoned\"); }\n",
                ),
            ),
            (
                "lint-allow.txt",
                "expect-in-send-recv-path fault.rs mutex poisoned\n",
            ),
        ]);
        let r = run_lints(&fx.root).expect("lint runs");
        let hits: Vec<usize> = r
            .findings
            .iter()
            .filter(|f| f.rule == "expect-in-send-recv-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1], "only the unaudited expect is reported");
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn unbounded_recv_in_recovery_path_is_flagged_but_deadline_recv_is_not() {
        let fx = Fixture::new(&[(
            "crates/sim/src/takeover.rs",
            concat!(
                "fn barrier(comm: &mut Comm) {\n",
                "    let x: u64 = comm.recv(0, tags::TAKEOVER_GO);\n",
                "    let y = comm.recv::<u64>(1, tags::TAKEOVER_READY);\n",
                "    let ok = comm.recv_deadline::<u64>(0, tags::TAKEOVER_GO, t);\n",
                "}\n",
            ),
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        let lines: Vec<usize> = r
            .findings
            .iter()
            .filter(|f| f.rule == "unbounded-recv-in-recovery-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2, 3], "deadline-bounded receives stay legal");
    }

    #[test]
    fn per_step_allocation_in_hot_path_is_flagged() {
        let fx = Fixture::new(&[(
            "crates/sim/src/pe.rs",
            concat!(
                "fn ghosts_send(&mut self) {\n",
                "    let mut payload = Vec::new();\n",
                "    let ids: Vec<u64> = parts.iter().map(|p| p.id).collect();\n",
                "    let copy = parts.to_vec();\n",
                "    frame.parts.extend_from_slice(parts); // pooled: fine\n",
                "}\n",
            ),
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        let lines: Vec<usize> = r
            .findings
            .iter()
            .filter(|f| f.rule == "per-step-allocation-in-hot-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2, 3, 4], "pooled reuse must stay legal");
    }

    #[test]
    fn hardcoded_duration_in_comm_path_is_flagged_but_float_secs_are_not() {
        let fx = Fixture::new(&[(
            "crates/mp/src/comm.rs",
            concat!(
                "fn wait(&self) {\n",
                "    std::thread::sleep(Duration::from_millis(50));\n",
                "    let t = Duration::from_secs(60);\n",
                "    let v = Duration::from_secs_f64(self.cost.latency); // virtual time: fine\n",
                "}\n",
            ),
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        let lines: Vec<usize> = r
            .findings
            .iter()
            .filter(|f| f.rule == "hardcoded-duration-in-comm-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2, 3], "float-seconds virtual time stays legal");
    }

    #[test]
    fn comments_do_not_trigger() {
        let fx = Fixture::new(&[(
            "crates/core/src/lib.rs",
            "// Instant::now would be wrong here\npub fn f() {}\n",
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert!(r.findings.is_empty());
    }

    #[test]
    fn allowlist_suppresses_matching_findings() {
        let fx = Fixture::new(&[
            (
                "crates/mp/src/channel.rs",
                "fn lock() { self.q.lock().unwrap(); }\nfn other() { v.pop().unwrap(); }\n",
            ),
            (
                "lint-allow.txt",
                "# poisoned-mutex unwrap is idiomatic\nunwrap-in-send-recv-path channel.rs lock().unwrap()\n",
            ),
        ]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn dead_allowlist_entry_is_reported_and_live_one_is_not() {
        let fx = Fixture::new(&[
            (
                "crates/mp/src/channel.rs",
                "fn lock() { self.q.lock().unwrap(); }\n",
            ),
            (
                "lint-allow.txt",
                concat!(
                    "unwrap-in-send-recv-path channel.rs lock().unwrap()\n",
                    "unwrap-in-send-recv-path channel.rs pop().unwrap()\n",
                ),
            ),
        ]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert_eq!(r.suppressed, 1);
        assert_eq!(
            r.dead_allows,
            vec!["unwrap-in-send-recv-path  channel.rs  pop().unwrap()".to_string()],
            "the entry whose code was fixed must surface as dead"
        );
    }

    #[test]
    fn shadowed_allowlist_entry_counts_as_dead() {
        // Two entries both match the same finding; only the first gets
        // credit, so the redundant second is reported dead.
        let fx = Fixture::new(&[
            (
                "crates/mp/src/channel.rs",
                "fn lock() { self.q.lock().unwrap(); }\n",
            ),
            (
                "lint-allow.txt",
                concat!(
                    "* channel.rs lock().unwrap()\n",
                    "unwrap-in-send-recv-path channel.rs lock().unwrap()\n",
                ),
            ),
        ]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.dead_allows.len(), 1);
        assert!(r.dead_allows[0].starts_with("unwrap-in-send-recv-path"));
    }

    #[test]
    fn cfg_test_attribute_on_single_item_skips_only_that_item() {
        let fx = Fixture::new(&[(
            "crates/domain/src/lib.rs",
            "#[cfg(test)]\nuse std::time::SystemTime;\npub fn f() { let _ = SystemTime::now(); }\n",
        )]);
        let r = run_lints(&fx.root).expect("lint runs");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn the_real_repo_is_clean() {
        // The crate sits at <root>/crates/check; the repo root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root")
            .to_path_buf();
        let r = run_lints(&root).expect("lint runs");
        assert!(
            r.findings.is_empty(),
            "lint violations in the real tree:\n{}",
            r.findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            r.dead_allows.is_empty(),
            "stale lint-allow.txt entries:\n{}",
            r.dead_allows.join("\n")
        );
        assert!(r.files_scanned > 10);
    }
}

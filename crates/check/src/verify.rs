//! Static verification of the extracted communication schedule.
//!
//! Four checks, each of which a seeded-mutation test proves live:
//!
//! - **Tag-table well-formedness** ([`check_tag_table`]): tags unique per
//!   namespace, point-to-point tags disjoint from the collective wire
//!   range, collective tags small enough that round namespacing cannot
//!   alias.
//! - **Tag uniqueness** ([`check_tag_uniqueness`]): within one phase no
//!   `(src, dst)` pair uses the same wire tag twice — two in-flight
//!   messages on the same `(src, dst, tag)` within a phase could only be
//!   told apart by arrival order.
//! - **Send/recv matching** ([`check_matching`]): per phase, the multiset
//!   of posted sends equals the multiset of blocking receives — a missing
//!   send means a receiver blocks forever, an extra send leaks into a
//!   later phase.
//! - **Deadlock freedom** ([`check_deadlock_freedom`]): the blocking-wait
//!   graph (each receive waits on its matching send being reached, which
//!   waits on the sender's preceding receives) is acyclic.

use std::collections::BTreeMap;

use pcdlb_core::protocol::tags::TAG_TABLE;
use pcdlb_mp::collectives::COLLECTIVE_BIT;
use pcdlb_mp::Torus2d;

use crate::schedule::{step_schedule, Op, ScheduleOpts, StepSchedule};

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which check fired.
    pub check: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Check the protocol tag table itself (independent of any grid).
pub fn check_tag_table() -> Vec<Violation> {
    check_tags(TAG_TABLE)
}

/// [`check_tag_table`] against an explicit table — lets the seeded
/// mutation tests prove the check catches a colliding tag.
pub fn check_tags(table: &[pcdlb_core::protocol::tags::TagSpec]) -> Vec<Violation> {
    let mut out = Vec::new();
    for collective in [false, true] {
        let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
        for spec in table.iter().filter(|s| s.collective == collective) {
            if let Some(prev) = seen.insert(spec.tag, spec.name) {
                out.push(Violation {
                    check: "tag-table",
                    detail: format!(
                        "tag {} used by both {prev} and {} (collective={collective})",
                        spec.tag, spec.name
                    ),
                });
            }
        }
    }
    for spec in table {
        if !spec.collective && spec.tag & COLLECTIVE_BIT != 0 {
            out.push(Violation {
                check: "tag-table",
                detail: format!(
                    "point-to-point tag {} ({}) intrudes into the collective namespace",
                    spec.tag, spec.name
                ),
            });
        }
        // Collective wire tags are `BIT | tag<<8 | round`; the tag must
        // survive the shift and leave the round byte clear, or two
        // different (tag, round) pairs could alias on the wire.
        if spec.collective && (spec.tag << 8) >> 8 != spec.tag {
            out.push(Violation {
                check: "tag-table",
                detail: format!(
                    "collective tag {} ({}) overflows namespacing",
                    spec.tag, spec.name
                ),
            });
        }
    }
    out
}

/// Within each phase, no `(src, dst)` pair may use the same wire tag for
/// two sends (or two receives).
pub fn check_tag_uniqueness(s: &StepSchedule) -> Vec<Violation> {
    let mut out = Vec::new();
    // (phase, src, dst, tag, is_send) → count
    let mut counts: BTreeMap<(u8, usize, usize, u64, bool), usize> = BTreeMap::new();
    for (r, ops) in s.ranks.iter().enumerate() {
        for po in ops {
            let key = match po.op {
                Op::Send { to, tag } => (po.phase as u8, r, to, tag, true),
                Op::Recv { from, tag } => (po.phase as u8, from, r, tag, false),
            };
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    for ((phase, src, dst, tag, is_send), n) in counts {
        if n > 1 {
            out.push(Violation {
                check: "tag-uniqueness",
                detail: format!(
                    "{} {n} messages on (src {src}, dst {dst}, tag {tag}) within phase #{phase}",
                    if is_send { "sends" } else { "recvs" },
                ),
            });
        }
    }
    out
}

/// Per phase, the multiset of sends must equal the multiset of receives.
pub fn check_matching(s: &StepSchedule) -> Vec<Violation> {
    let mut out = Vec::new();
    // (phase, src, dst, tag) → (sends, recvs)
    let mut counts: BTreeMap<(u8, usize, usize, u64), (isize, isize)> = BTreeMap::new();
    for (r, ops) in s.ranks.iter().enumerate() {
        for po in ops {
            match po.op {
                Op::Send { to, tag } => {
                    counts
                        .entry((po.phase as u8, r, to, tag))
                        .or_insert((0, 0))
                        .0 += 1;
                }
                Op::Recv { from, tag } => {
                    counts
                        .entry((po.phase as u8, from, r, tag))
                        .or_insert((0, 0))
                        .1 += 1;
                }
            }
        }
    }
    for ((phase, src, dst, tag), (sends, recvs)) in counts {
        if sends != recvs {
            out.push(Violation {
                check: "matching",
                detail: format!(
                    "phase #{phase}, (src {src}, dst {dst}, tag {tag}): {sends} send(s) vs {recvs} recv(s)",
                ),
            });
        }
    }
    out
}

/// Detect blocking cycles: match the k-th send on each `(src, dst, tag)`
/// stream with the k-th receive (FIFO delivery), then check that the
/// dependency graph over receives is acyclic. A receive depends on the
/// receive preceding it on its own rank (program order) and on the last
/// receive its matching sender performs before the send (the sender must
/// get that far to post the send).
pub fn check_deadlock_freedom(s: &StepSchedule) -> Vec<Violation> {
    let mut out = Vec::new();
    // FIFO queues per (src, dst, tag).
    let mut sends: BTreeMap<(usize, usize, u64), Vec<usize>> = BTreeMap::new();
    let mut recvs: BTreeMap<(usize, usize, u64), Vec<usize>> = BTreeMap::new();
    for (r, ops) in s.ranks.iter().enumerate() {
        for (i, po) in ops.iter().enumerate() {
            match po.op {
                Op::Send { to, tag } => sends.entry((r, to, tag)).or_default().push(i),
                Op::Recv { from, tag } => recvs.entry((from, r, tag)).or_default().push(i),
            }
        }
    }
    // Last receive at or before each op index, per rank (for fast "the
    // sender's preceding receive" lookups).
    let prev_recv: Vec<Vec<Option<usize>>> = s
        .ranks
        .iter()
        .map(|ops| {
            let mut last = None;
            let mut v = Vec::with_capacity(ops.len());
            for (i, po) in ops.iter().enumerate() {
                v.push(last);
                if matches!(po.op, Op::Recv { .. }) {
                    last = Some(i);
                }
            }
            v
        })
        .collect();
    // Dependency edges between receive nodes (rank, op index).
    let mut deps: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    for (&(src, dst, tag), rq) in &recvs {
        let sq = sends
            .get(&(src, dst, tag))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        for (k, &ri) in rq.iter().enumerate() {
            let node = (dst, ri);
            let entry = deps.entry(node).or_default();
            if let Some(p) = prev_recv[dst][ri] {
                entry.push((dst, p));
            }
            match sq.get(k) {
                Some(&si) => {
                    if let Some(p) = prev_recv[src][si] {
                        entry.push((src, p));
                    }
                }
                None => out.push(Violation {
                    check: "deadlock",
                    detail: format!(
                        "rank {dst} blocks on recv #{k} from (src {src}, tag {tag}) but only {} send(s) exist",
                        sq.len()
                    ),
                }),
            }
        }
    }
    // Iterative three-colour DFS for a cycle.
    let mut colour: BTreeMap<(usize, usize), u8> = BTreeMap::new();
    let nodes: Vec<(usize, usize)> = deps.keys().copied().collect();
    for &start in &nodes {
        if colour.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<((usize, usize), usize)> = vec![(start, 0)];
        colour.insert(start, 1);
        while let Some(&(node, next)) = stack.last() {
            let succs = deps.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                let child = succs[next];
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                match colour.get(&child).copied().unwrap_or(0) {
                    0 => {
                        colour.insert(child, 1);
                        stack.push((child, 0));
                    }
                    1 => {
                        let cycle: Vec<String> = stack
                            .iter()
                            .map(|&((r, i), _)| format!("rank {r} op {i}"))
                            .collect();
                        out.push(Violation {
                            check: "deadlock",
                            detail: format!(
                                "blocking-wait cycle through {} back to rank {} op {}",
                                cycle.join(" → "),
                                child.0,
                                child.1
                            ),
                        });
                        return out;
                    }
                    _ => {}
                }
            } else {
                colour.insert(node, 2);
                stack.pop();
            }
        }
    }
    out
}

/// All schedule-level checks on one schedule.
pub fn verify_schedule(s: &StepSchedule) -> Vec<Violation> {
    let mut out = check_tag_uniqueness(s);
    out.extend(check_matching(s));
    out.extend(check_deadlock_freedom(s));
    out
}

/// Result of a grid sweep.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Torus sides swept.
    pub sides: Vec<usize>,
    /// Number of `(grid, decision scenario)` schedules verified.
    pub schedules_checked: usize,
    /// All violations found (empty for a correct protocol).
    pub violations: Vec<Violation>,
}

/// The six tile deltas along which a DLB transfer may travel (Cases 1
/// and 3); the decision-scenario sweep instantiates each.
pub const LEGAL_DELTAS: [(i64, i64); 6] = [(-1, -1), (-1, 0), (0, -1), (0, 1), (1, 0), (1, 1)];

/// Verify the protocol on every square grid with side `2..=max_side`:
/// the base schedule, the full schedule with no transfers, every
/// single-transfer scenario along each legal delta, and two dense
/// all-ranks-transfer scenarios.
pub fn verify_protocol(max_side: usize) -> VerifyReport {
    let mut report = VerifyReport {
        sides: (2..=max_side.max(2)).collect(),
        schedules_checked: 0,
        violations: check_tag_table(),
    };
    for &side in &report.sides {
        let torus = Torus2d::new(side, side);
        let p = torus.len();
        let mut scenarios: Vec<ScheduleOpts> = vec![
            ScheduleOpts::default(),
            ScheduleOpts {
                // DLB needs distinct directional neighbour roles (side ≥ 3).
                dlb: side >= 3,
                ..ScheduleOpts::full()
            },
        ];
        if side >= 3 {
            for r in 0..p {
                for (di, dj) in LEGAL_DELTAS {
                    scenarios.push(ScheduleOpts {
                        dlb: true,
                        decisions: vec![(r, torus.neighbor(r, di, dj))],
                        ..Default::default()
                    });
                }
            }
            for (di, dj) in [(-1i64, -1i64), (1, 1)] {
                scenarios.push(ScheduleOpts {
                    dlb: true,
                    decisions: (0..p).map(|r| (r, torus.neighbor(r, di, dj))).collect(),
                    ..ScheduleOpts::full()
                });
            }
        }
        for opts in &scenarios {
            let s = step_schedule(side, opts);
            let vs = verify_schedule(&s);
            for v in vs {
                report.violations.push(Violation {
                    check: v.check,
                    detail: format!("side {side}, scenario {:?}: {}", opts.decisions, v.detail),
                });
            }
            report.schedules_checked += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PhasedOp;
    use pcdlb_core::protocol::tags::{self, CommPhase};

    #[test]
    fn clean_protocol_verifies_on_all_grids() {
        let report = verify_protocol(5);
        assert!(
            report.violations.is_empty(),
            "expected a clean protocol, got: {:#?}",
            report.violations
        );
        assert!(report.schedules_checked > 100);
    }

    #[test]
    fn tag_table_check_is_clean() {
        assert!(check_tag_table().is_empty());
    }

    #[test]
    fn hand_built_deadlock_cycle_is_detected() {
        // rank 0: recv(1, t=2) then send(1, t=1)
        // rank 1: recv(0, t=1) then send(0, t=2)
        // Each waits for a send the other only posts after its own recv.
        let mk = |op| PhasedOp {
            phase: CommPhase::Migrate,
            op,
        };
        let s = StepSchedule {
            p: 2,
            ranks: vec![
                vec![
                    mk(Op::Recv { from: 1, tag: 2 }),
                    mk(Op::Send { to: 1, tag: 1 }),
                ],
                vec![
                    mk(Op::Recv { from: 0, tag: 1 }),
                    mk(Op::Send { to: 0, tag: 2 }),
                ],
            ],
        };
        let vs = check_deadlock_freedom(&s);
        assert!(
            vs.iter()
                .any(|v| v.check == "deadlock" && v.detail.contains("cycle")),
            "cycle not found: {vs:?}"
        );
        // Matching itself is fine — only the order deadlocks.
        assert!(check_matching(&s).is_empty());
    }

    #[test]
    fn sends_first_ordering_is_deadlock_free() {
        let mk = |op| PhasedOp {
            phase: CommPhase::Migrate,
            op,
        };
        let s = StepSchedule {
            p: 2,
            ranks: vec![
                vec![
                    mk(Op::Send { to: 1, tag: 1 }),
                    mk(Op::Recv { from: 1, tag: 2 }),
                ],
                vec![
                    mk(Op::Send { to: 0, tag: 2 }),
                    mk(Op::Recv { from: 0, tag: 1 }),
                ],
            ],
        };
        assert!(verify_schedule(&s).is_empty());
    }

    #[test]
    fn ghost_phase_reuses_neighbourhood_shape() {
        let s = step_schedule(4, &ScheduleOpts::full());
        let ghosts = s.ranks[5]
            .iter()
            .filter(|o| o.phase == CommPhase::Ghost)
            .count();
        assert_eq!(ghosts, 16, "8 sends + 8 recvs on a 4×4 torus");
        assert!(verify_schedule(&s).is_empty());
        // Collective rounds stay inside the namespaced range.
        for ops in &s.ranks {
            for po in ops {
                let (Op::Send { tag, .. } | Op::Recv { tag, .. }) = po.op;
                if po.phase >= CommPhase::Thermostat {
                    assert!(tag & pcdlb_mp::collectives::COLLECTIVE_BIT != 0);
                } else {
                    assert!(tag & pcdlb_mp::collectives::COLLECTIVE_BIT == 0);
                    assert!(tags::TAG_TABLE
                        .iter()
                        .any(|t| t.tag == tag && !t.collective));
                }
            }
        }
    }
}

//! The transport-chaos sweep: bitwise parity on an unreliable substrate.
//!
//! PR 9's reliability layer claims that a run over a [`LossyTransport`]
//! — seeded frame drops, duplicates, bounded reordering and timed
//! bidirectional partitions — produces **bitwise identical** particle
//! state and records to the serial reference, exactly as a run over the
//! reliable in-process transport does. A single lossy unit test cannot
//! substantiate that claim across the protocol surface; this module
//! sweeps it:
//!
//! - **Loss matrix**: seeds × loss rates across all three
//!   decompositions (2×2 DDM torus, 3×3 DLB torus, plane, cube), each
//!   lossy run compared bitwise ([`digest_particles`]) against the
//!   serial reference, and for the torus workload also
//!   [`digest_run`]-compared against the clean in-process run — so
//!   records, message counts and byte totals must survive the
//!   disturbance too, not just the trajectory.
//! - **Healed partition**: a timed partition window that opens and
//!   closes mid-run must be absorbed silently by retransmission — same
//!   parity, no takeover (the run has no takeover harness, so an
//!   escalation would fail it).
//! - **Takeover-escalating partition**: a permanent isolation of one
//!   rank must fence the minority side, register its death, and let the
//!   recovery ladder absorb it — `run_with_takeover` must report at
//!   least one takeover and a `digest_recovery` bitwise equal to the
//!   fault-free reference.
//! - **Reliable baseline**: the same workloads over [`InProcTransport`]
//!   must show zero retransmits and zero suspicions, and the lossy
//!   run's app-level `bytes_on_wire` accounting must be byte-identical
//!   to the reliable run's — the reliability layer may never leak into
//!   the simulator's wire budget.
//!
//! Every sweep runs under a global wall-clock timeout: no-hang under
//! loss and partition is part of the claim, so a hang is reported as a
//! failure rather than wedging CI.
//!
//! [`LossyTransport`]: pcdlb_mp::LossyTransport
//! [`InProcTransport`]: pcdlb_mp::InProcTransport
//! [`digest_particles`]: pcdlb_sim::digest_particles
//! [`digest_run`]: pcdlb_sim::digest_run

use std::time::Duration;

use pcdlb_mp::{LossyProfile, Partition};
use pcdlb_sim::config::{Lattice, RunConfig};
use pcdlb_sim::cube::run_cube_with_snapshot;
use pcdlb_sim::plane::run_plane_with_snapshot;
use pcdlb_sim::{
    digest_particles, digest_run, run_serial, run_with_phase_times, run_with_snapshot,
    run_with_takeover, RecoveryOptions,
};

use crate::faults::run_under_timeout;

/// What a chaos sweep observed.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Lossy runs compared bitwise against the serial reference
    /// (torus, DLB torus, plane and cube cells of the loss matrix).
    pub parity_runs: usize,
    /// Partition-window runs that had to heal silently in place.
    pub healed_partitions: usize,
    /// Permanent-isolation runs that had to escalate into a takeover.
    pub takeover_partitions: usize,
    /// Reliable-transport baseline runs (zero-retransmit checks).
    pub inproc_runs: usize,
    /// Total retransmissions observed across all lossy runs — zero
    /// means the disturbance never engaged and the sweep proved
    /// nothing, so it is reported as a violation.
    pub retransmits: u64,
    /// Total suspicion episodes observed across all lossy runs
    /// (informational: short partitions may or may not trip the φ
    /// detector depending on scheduling).
    pub suspicions: u64,
    /// Parity, liveness or escalation failures (empty when the
    /// reliability layer holds).
    pub violations: Vec<String>,
}

/// The torus sweep workload: the fault sweep's small-but-busy 2×2
/// clustered configuration (DDM only — P = 4 cannot run DLB), shortened
/// so the full matrix stays CI-sized.
fn torus_config() -> RunConfig {
    let mut cfg = crate::faults::sweep_config();
    cfg.steps = 12;
    cfg.checkpoint_interval = 0;
    cfg
}

/// A 3×3 DLB workload: the smallest grid on which permanent-cell load
/// balancing runs, so lossy links also disturb the decision and
/// cell-transfer exchanges.
fn dlb_config() -> RunConfig {
    let mut cfg = RunConfig::new(729, 6, 9, 0.2);
    cfg.dlb = true;
    cfg.steps = 8;
    cfg.thermostat_interval = 4;
    cfg.lattice = Lattice::Cluster { fill: 0.6 };
    cfg.seed = 5;
    cfg.validate();
    cfg
}

/// The disturbance cells of the loss matrix: (drop, dup, delay) per
/// mille. Both rows are at or above the 1% loss floor the acceptance
/// criteria demand.
const LOSS_RATES: [(u32, u32, u32); 2] = [(15, 8, 8), (45, 20, 20)];

fn profile(seed: u64, rates: (u32, u32, u32)) -> LossyProfile {
    let mut p = LossyProfile::new(seed);
    p.drop_per_mille = rates.0;
    p.dup_per_mille = rates.1;
    p.delay_per_mille = rates.2;
    p.delay_max = 3;
    p
}

/// Sweep `seeds` disturbance seeds per loss rate across the four
/// workloads, plus the partition scenarios and the reliable baseline.
pub fn chaos_sweep(seeds: u64) -> ChaosOutcome {
    let seeds = seeds.max(1);
    let mut out = ChaosOutcome {
        parity_runs: 0,
        healed_partitions: 0,
        takeover_partitions: 0,
        inproc_runs: 0,
        retransmits: 0,
        suspicions: 0,
        violations: Vec::new(),
    };

    // Reliable baseline: the torus workload over InProcTransport. The
    // reliability layer must be fully inert — zero retransmits, zero
    // suspicions — and its wire accounting is the reference the lossy
    // runs must reproduce byte-for-byte.
    let base = torus_config();
    let serial_torus = digest_particles(&run_serial(&base));
    let (clean_report, _, clean_wire) = run_with_phase_times(&base);
    out.inproc_runs += 1;
    if clean_report.retransmits != 0 || clean_report.suspicions != 0 {
        out.violations.push(format!(
            "inproc baseline: reliability layer engaged on a reliable transport \
             ({} retransmit(s), {} suspicion(s))",
            clean_report.retransmits, clean_report.suspicions
        ));
    }
    let (clean_report2, clean_snap) = run_with_snapshot(&base);
    out.inproc_runs += 1;
    if digest_particles(&clean_snap) != serial_torus {
        out.violations
            .push("inproc baseline: parallel snapshot diverges from serial".into());
    }
    let clean_digest = digest_run(&clean_report2, &clean_snap, base.load_metric);

    // Loss matrix: seeds × rates × decompositions, every cell compared
    // bitwise against the serial reference.
    let serial_dlb = digest_particles(&run_serial(&dlb_config()));
    let (serial_plane, serial_cube) = {
        let mut plane_cfg = base.clone();
        plane_cfg.p = 3;
        let mut cube_cfg = base.clone();
        cube_cfg.p = 8;
        (
            digest_particles(&run_serial(&plane_cfg)),
            digest_particles(&run_serial(&cube_cfg)),
        )
    };
    for seed in 1..=seeds {
        for (ri, &rates) in LOSS_RATES.iter().enumerate() {
            let chaos = profile(seed.wrapping_mul(0x9e37) ^ ri as u64, rates);
            let label = format!("seed {seed}, rates {rates:?}");

            // 2×2 torus: snapshot parity, full-digest parity against the
            // clean run, and wire-accounting parity.
            let mut cfg = base.clone();
            cfg.comm.chaos = Some(chaos.clone());
            let (report, _, wire) = run_with_phase_times(&cfg);
            out.retransmits += report.retransmits;
            out.suspicions += report.suspicions;
            if wire != clean_wire {
                out.violations.push(format!(
                    "torus [{label}]: bytes_on_wire {wire:?} != reliable baseline {clean_wire:?}"
                ));
            }
            let (report, snap) = run_with_snapshot(&cfg);
            out.parity_runs += 1;
            out.retransmits += report.retransmits;
            out.suspicions += report.suspicions;
            if digest_particles(&snap) != serial_torus {
                out.violations
                    .push(format!("torus [{label}]: snapshot diverges from serial"));
            }
            if digest_run(&report, &snap, cfg.load_metric) != clean_digest {
                out.violations.push(format!(
                    "torus [{label}]: run digest diverges from the reliable baseline"
                ));
            }

            // 3×3 DLB torus.
            let mut cfg = dlb_config();
            cfg.comm.chaos = Some(chaos.clone());
            let (report, snap) = run_with_snapshot(&cfg);
            out.parity_runs += 1;
            out.retransmits += report.retransmits;
            out.suspicions += report.suspicions;
            if digest_particles(&snap) != serial_dlb {
                out.violations.push(format!(
                    "dlb torus [{label}]: snapshot diverges from serial"
                ));
            }

            // Plane decomposition (P = 3 over nc = 4: uneven slabs).
            let mut cfg = base.clone();
            cfg.p = 3;
            cfg.comm.chaos = Some(chaos.clone());
            let (report, snap) = run_plane_with_snapshot(&cfg);
            out.parity_runs += 1;
            out.retransmits += report.retransmits;
            out.suspicions += report.suspicions;
            if digest_particles(&snap) != serial_plane {
                out.violations
                    .push(format!("plane [{label}]: snapshot diverges from serial"));
            }

            // Cube decomposition (P = 2³).
            let mut cfg = base.clone();
            cfg.p = 8;
            cfg.comm.chaos = Some(chaos);
            let (report, snap) = run_cube_with_snapshot(&cfg);
            out.parity_runs += 1;
            out.retransmits += report.retransmits;
            out.suspicions += report.suspicions;
            if digest_particles(&snap) != serial_cube {
                out.violations
                    .push(format!("cube [{label}]: snapshot diverges from serial"));
            }
        }
    }

    // Healed partition: links 0↔1 go dark for a per-link frame window
    // mid-run, then heal. Retransmission must carry the run through with
    // no takeover harness to fall back on — completion plus parity *is*
    // the proof the partition healed in place.
    let mut cfg = base.clone();
    let mut chaos = LossyProfile::new(23);
    chaos.partitions = vec![Partition {
        a: 0,
        b: 1,
        from_frame: 4,
        to_frame: 12,
    }];
    cfg.comm.chaos = Some(chaos);
    let (report, snap) = run_with_snapshot(&cfg);
    out.healed_partitions += 1;
    out.retransmits += report.retransmits;
    out.suspicions += report.suspicions;
    if digest_particles(&snap) != serial_torus {
        out.violations
            .push("healed partition: snapshot diverges from serial".into());
    }
    if report.retransmits == 0 {
        out.violations
            .push("healed partition: no retransmissions — the window never engaged".into());
    }

    // Takeover-escalating partition: rank 2 is permanently isolated
    // mid-run. The minority side must fence itself, die, and be adopted
    // by its buddy; the degraded (or relaunched) completion must match
    // the fault-free recovery digest bitwise.
    let cfg = crate::faults::sweep_config();
    let opts = RecoveryOptions {
        max_attempts: 6,
        poll: Duration::from_millis(2),
        watchdog: Duration::from_secs(30),
    };
    match run_with_takeover(&cfg, &opts) {
        Err(e) => out.violations.push(format!(
            "takeover partition: fault-free reference failed: {e}"
        )),
        Ok(reference) => {
            let mut lossy_cfg = cfg.clone();
            // Quicker φ fencing than the defaults so the isolated rank's
            // self-fence lands well inside the sweep timeout.
            lossy_cfg.comm.heartbeat = Duration::from_millis(40);
            lossy_cfg.comm.suspicion_min = Duration::from_millis(300);
            lossy_cfg.comm.suspicion_max = Duration::from_millis(1200);
            lossy_cfg.comm.chaos = Some(LossyProfile::new(31).isolate(2, cfg.p, 30, u64::MAX));
            out.takeover_partitions += 1;
            match run_with_takeover(&lossy_cfg, &opts) {
                Ok(o) => {
                    if o.takeovers == 0 {
                        out.violations.push(format!(
                            "takeover partition: permanent isolation was absorbed without a \
                             takeover ({} attempt(s))",
                            o.attempts
                        ));
                    }
                    if o.digest != reference.digest {
                        out.violations.push(format!(
                            "takeover partition: digest {:#018x} != fault-free reference {:#018x} \
                             ({} attempt(s), {} takeover(s))",
                            o.digest, reference.digest, o.attempts, o.takeovers
                        ));
                    }
                }
                Err(e) => out
                    .violations
                    .push(format!("takeover partition: unrecovered: {e}")),
            }
        }
    }

    if out.retransmits == 0 {
        out.violations.push(
            "sweep-wide: zero retransmissions — the lossy transport never disturbed a frame".into(),
        );
    }
    out
}

/// [`chaos_sweep`] under a global wall-clock `timeout` — no-hang under
/// loss and partition is part of the claim, so a hang must fail, not
/// wedge CI.
pub fn chaos_sweep_with_timeout(seeds: u64, timeout: Duration) -> Result<ChaosOutcome, String> {
    run_under_timeout(timeout, "chaos sweep", move || chaos_sweep(seeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_chaos_sweep_holds_parity_on_every_decomposition() {
        // One seed keeps this a smoke test; the full matrix is
        // `pcdlb-check chaos` (CI's chaos-matrix job).
        let out = chaos_sweep(1);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        // 1 seed × 2 rates × 4 workloads.
        assert_eq!(out.parity_runs, 8);
        assert_eq!(out.healed_partitions, 1);
        assert_eq!(out.takeover_partitions, 1);
        assert!(out.inproc_runs >= 2);
        assert!(out.retransmits > 0, "the disturbance must engage");
    }
}

//! `pcdlb-check` — static protocol verifier, interleaving-exploring
//! determinism checker, and lint pass for the message-passing layer.
//!
//! The paper's SPMD program is only correct if three things hold that the
//! type system cannot express:
//!
//! 1. **The wire protocol is well-formed** ([`schedule`], [`verify`]):
//!    every blocking receive in the per-step schedule has a matching send,
//!    no `(src, dst, phase)` reuses a tag, and the blocking-wait graph is
//!    acyclic (deadlock freedom) — checked for every PE grid up to a
//!    configurable size by extracting the schedule from the same
//!    `Torus2d` neighbour enumeration and
//!    [`pcdlb_core::protocol::tags::TAG_TABLE`] the simulator sends with.
//! 2. **The permanent-cell invariant holds** ([`invariant`]): no sequence
//!    of protocol-legal ownership transfers ever moves a permanent cell or
//!    breaks the 8-neighbour adjacency the communication pattern relies
//!    on — checked by bounded search over the reachable ownership states.
//! 3. **Results are delivery-order independent** ([`explore`]): the
//!    simulation digest ([`pcdlb_sim::digest`]) must be bit-identical no
//!    matter in which order messages from different sources arrive —
//!    checked by re-running the simulator under a controlled scheduler
//!    (`pcdlb-mp`'s `check` feature) that permutes message-arrival order.
//!
//! A fourth property arrived with the recovery subsystem:
//!
//! 4. **Crash recovery restores bitwise parity** ([`faults`]): killing
//!    any rank at any send op — or mid checkpoint gather, or injecting
//!    seeded drop / delay / duplicate / truncate schedules — and
//!    restarting from the last distributed checkpoint must reproduce
//!    the uninterrupted run's records and particle state exactly,
//!    checked by sweeping kill points across a 2×2 run under a global
//!    no-hang timeout.
//!
//! A fifth arrived with degraded-mode survivor takeover:
//!
//! 5. **Buddy takeover is sound** ([`takeover`]): the buddy map is
//!    total, deterministic, and 8-neighbour-adjacent on every grid; the
//!    merged dual-role schedule a surviving thread runs after adopting
//!    a dead virtual rank is deadlock-free (checked by a dedicated
//!    thread-program executor, since the rank-keyed blocking-wait graph
//!    no longer applies); and killing ranks at strided send ops on 2×2
//!    and 3×3 worlds completes — degraded on `n − 1` threads or via
//!    full relaunch — with `digest_recovery` bitwise equal to the
//!    fault-free reference.
//!
//! A sixth deepens the third from digest equality to typed safety:
//!
//! 6. **The protocol state machine is safe on every explored
//!    interleaving** ([`model`]): a stateful model checker replays the
//!    simulator under controlled delivery with full protocol event
//!    tracing, prunes commuting delivery choices with a dynamic
//!    partial-order reduction (independence from blocking exact-match
//!    consumption, sleep-set dedup, visited-state hashing), and checks
//!    per-stream sequence gaplessness, non-overtaking consumption,
//!    epoch monotonicity, pool checkout/checkin balance, single
//!    adoption per death, and sentinel conservation on every trace —
//!    each violation reported with its minimal offending event window.
//!
//! A seventh arrived with elastic world resizing:
//!
//! 7. **Elastic resizing preserves physics and absorbs faults**
//!    ([`resize`]): shrink and grow plans at several step boundaries on
//!    two cell grids must conserve the particle count, keep the record
//!    series complete, and land bitwise on the serial reference (and on
//!    the plane and cube decompositions) — and killing any rank inside
//!    the resize window itself (the drain checkpoint gather, the
//!    READY/GO resume barrier, or any strided send op of any
//!    generation) must complete with `digest_recovery` bitwise equal to
//!    the fault-free elastic reference.
//!
//! An eighth arrived with the transport abstraction and its
//! end-to-end reliability layer:
//!
//! 8. **The reliability layer is transparent** ([`chaos`]): runs over a
//!    seeded lossy transport (frame drops, duplicates, bounded
//!    reordering, timed bidirectional partitions) must land bitwise on
//!    the serial reference across all three decompositions — including
//!    record series, message counts and wire-byte accounting; a
//!    partition window that closes mid-run must heal silently by
//!    retransmission, a permanent isolation must escalate into the
//!    recovery ladder (self-fence → buddy takeover) with
//!    `digest_recovery` parity, and over the reliable in-process
//!    transport the layer must be fully inert (zero retransmits) — all
//!    under a global no-hang timeout.
//!
//! [`lint`] adds a repo lint pass for the hazards that produce such bugs:
//! wall-clock reads in deterministic crates, hash-order iteration in
//! protocol-facing code, and `unwrap()` / unaudited `expect()` on
//! send/recv paths.
//!
//! The `pcdlb-check` binary drives all of it; see `README.md`.

pub mod chaos;
pub mod explore;
pub mod faults;
pub mod invariant;
pub mod lint;
pub mod model;
pub mod resize;
pub mod schedule;
pub mod takeover;
pub mod verify;

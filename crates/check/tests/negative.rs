//! Seeded-mutation tests: each verifier layer must catch a deliberately
//! introduced protocol bug. A verifier that passes a clean tree proves
//! nothing unless these fail loudly.

use pcdlb_check::invariant::{check_state, validate_decision, DlbDecision};
use pcdlb_check::schedule::{step_schedule, Op, ScheduleOpts};
use pcdlb_check::verify::{
    check_deadlock_freedom, check_matching, check_tag_uniqueness, check_tags, verify_schedule,
};
use pcdlb_core::permanent::is_permanent;
use pcdlb_core::protocol::tags::{self, CommPhase, TagSpec};
use pcdlb_domain::{Col, OwnershipMap, PillarLayout};

#[test]
fn tag_collision_in_table_is_caught() {
    // Mutation: STATS reuses KE_GATHER's tag in the collective namespace.
    let mutated: Vec<TagSpec> = tags::TAG_TABLE
        .iter()
        .map(|s| {
            let mut s = *s;
            if s.name == "STATS" {
                s.tag = tags::KE_GATHER;
            }
            s
        })
        .collect();
    let vs = check_tags(&mutated);
    assert!(
        vs.iter()
            .any(|v| v.check == "tag-table" && v.detail.contains("KE_GATHER")),
        "collision not reported: {vs:?}"
    );
    // And a p2p tag wandering into the collective wire range is caught.
    let mut bad = tags::TAG_TABLE.to_vec();
    bad[0].tag |= pcdlb_mp::collectives::COLLECTIVE_BIT;
    assert!(check_tags(&bad)
        .iter()
        .any(|v| v.detail.contains("collective namespace")));
}

#[test]
fn tag_collision_in_schedule_is_caught() {
    // Mutation: one rank's DECISION send goes out with the STEP_FRAME
    // tag — a stray third round on that (src, dst) stream plus a
    // matching failure on the starved DECISION receive.
    let mut s = step_schedule(
        3,
        &ScheduleOpts {
            dlb: true,
            ..Default::default()
        },
    );
    let victim = s.ranks[4]
        .iter_mut()
        .find(|po| po.phase == CommPhase::DlbDecision && matches!(po.op, Op::Send { .. }))
        .expect("rank 4 sends decisions");
    let Op::Send { to, .. } = victim.op else {
        unreachable!()
    };
    victim.op = Op::Send {
        to,
        tag: tags::STEP_FRAME,
    };
    let vs = verify_schedule(&s);
    assert!(
        vs.iter().any(|v| v.check == "matching"),
        "mistagged send must break matching: {vs:?}"
    );

    // Mutation: duplicate a send within its phase — tag uniqueness fires.
    let mut s2 = step_schedule(3, &ScheduleOpts::default());
    let dup = s2.ranks[0][0];
    s2.ranks[0].insert(1, dup);
    assert!(check_tag_uniqueness(&s2)
        .iter()
        .any(|v| v.check == "tag-uniqueness"));
}

#[test]
fn dropped_send_is_caught() {
    let mut s = step_schedule(4, &ScheduleOpts::default());
    // Mutation: rank 7 forgets its first migrate send.
    let idx = s.ranks[7]
        .iter()
        .position(|po| matches!(po.op, Op::Send { .. }))
        .expect("has sends");
    s.ranks[7].remove(idx);
    let vs = verify_schedule(&s);
    assert!(vs.iter().any(|v| v.check == "matching"), "{vs:?}");
    assert!(
        vs.iter()
            .any(|v| v.check == "deadlock" && v.detail.contains("send(s) exist")),
        "the starved receiver must be identified: {vs:?}"
    );
}

#[test]
fn recv_before_send_deadlock_is_caught() {
    // Mutation: every rank posts its migrate receives before its sends —
    // the classic head-to-head deadlock the sends-first discipline avoids.
    let mut s = step_schedule(3, &ScheduleOpts::default());
    for ops in &mut s.ranks {
        let (mut recvs, rest): (Vec<_>, Vec<_>) = ops
            .drain(..)
            .partition(|po| po.phase == CommPhase::Migrate && matches!(po.op, Op::Recv { .. }));
        recvs.extend(rest);
        *ops = recvs;
    }
    let vs = check_deadlock_freedom(&s);
    assert!(
        vs.iter()
            .any(|v| v.check == "deadlock" && v.detail.contains("cycle")),
        "blocking cycle not detected: {vs:?}"
    );
    // Matching is still intact — only the order is fatal.
    assert!(check_matching(&s).is_empty());
}

#[test]
fn permanent_cell_giveaway_is_caught() {
    let layout = PillarLayout::from_p_and_m(9, 3);
    let om = OwnershipMap::initial(layout);
    let me = layout.torus().rank_wrapped(1, 1);
    let origin = layout.tile_origin(me);
    // The tile's SE corner is permanent; try to lend it NW anyway.
    let perm = Col::new(origin.cx + 2, origin.cy + 2);
    assert!(is_permanent(&layout, perm));
    let d = DlbDecision {
        col: perm,
        from: me,
        to: layout.torus().rank_wrapped(0, 0),
    };
    let err = validate_decision(&layout, &om, &d).expect_err("giveaway must be rejected");
    assert!(err.to_string().contains("permanent"), "{err}");

    // And if a buggy implementation applied it anyway, the state checker
    // flags the resulting ownership map.
    let mut bad = om.clone();
    bad.set_owner(perm, d.to);
    let state_err = check_state(&layout, &bad).expect_err("state must be rejected");
    assert!(
        state_err.contains("permanent") || state_err.contains("distance"),
        "{state_err}"
    );
}

#[test]
fn over_accumulation_is_caught() {
    // Mutation: pile every movable column of the grid onto rank `me`,
    // blowing through the m² + 3(m−1)² accumulation limit.
    let layout = PillarLayout::from_p_and_m(9, 3);
    let mut om = OwnershipMap::initial(layout);
    let me = layout.torus().rank_wrapped(1, 1);
    for col in layout.grid().iter() {
        if !is_permanent(&layout, col) {
            om.set_owner(col, me);
        }
    }
    let err = check_state(&layout, &om).expect_err("accumulation must be rejected");
    // Either the structural tile-distance check or the explicit limit
    // fires first, depending on which column it scans first.
    assert!(err.contains("limit") || err.contains("tile delta"), "{err}");
}

//! The determinism acceptance check: the simulation digest must be
//! identical across many message-delivery orders — plus a sanity check
//! that the machinery *can* observe order dependence in a program that
//! races on arrival timing.

use std::collections::BTreeSet;

use pcdlb_check::explore::{config_2x2, explore};
use pcdlb_mp::check::{DeliveryPolicy, ReplayPolicy, SeededPolicy};
use pcdlb_mp::World;

#[test]
fn digest_identical_across_at_least_24_delivery_orders_on_2x2() {
    let cfg = config_2x2(6);
    let out = explore(&cfg, 24, 24);
    assert_eq!(out.runs, 48);
    assert_eq!(
        out.digests.len(),
        1,
        "simulation digest depends on delivery order: {:?}",
        out.digests
    );
    assert!(
        out.distinct_orders >= 24,
        "only {} distinct delivery orders observed (need ≥ 24); max arity {}",
        out.distinct_orders,
        out.max_arity
    );
    assert!(
        out.max_arity >= 2,
        "no choice point ever had multiple candidates — nothing was explored"
    );
}

/// A deliberately racy program: rank 0 polls two senders with `try_recv`
/// and reports which message became visible first. Which candidate the
/// delivery policy releases first is exactly the race — different
/// policies must be able to produce different outcomes, proving the
/// explorer can distinguish delivery orders at all.
fn racy_first_seen(rank0_prefix: Vec<usize>) -> u64 {
    let world = World::new(3);
    let outs = world.run_with_delivery(
        move |rank| -> Box<dyn DeliveryPolicy> {
            if rank == 0 {
                Box::new(ReplayPolicy::new(rank0_prefix.clone()).0)
            } else {
                Box::new(ReplayPolicy::new(Vec::new()).0)
            }
        },
        |comm| {
            if comm.rank() == 0 {
                // Let both messages physically arrive so the first poll
                // faces a genuine two-candidate choice point.
                std::thread::sleep(std::time::Duration::from_millis(100));
                let mut order = Vec::new();
                while order.len() < 2 {
                    if !order.contains(&1) {
                        if let Some(v) = comm.try_recv::<u64>(1, 9) {
                            order.push(v);
                        }
                    }
                    if !order.contains(&2) {
                        if let Some(v) = comm.try_recv::<u64>(2, 9) {
                            order.push(v);
                        }
                    }
                }
                order[0]
            } else {
                comm.send(0, 9, comm.rank() as u64);
                0
            }
        },
    );
    outs[0]
}

#[test]
fn racy_program_outcomes_differ_across_policies() {
    // Prefix [0]: deliver source 1's message first → rank 0 sees 1 first.
    // Prefix [1]: deliver source 2's message first → rank 0 sees 2 first.
    let first = racy_first_seen(vec![0]);
    let second = racy_first_seen(vec![1]);
    assert_eq!(first, 1);
    assert_eq!(second, 2);
}

#[test]
fn deterministic_blocking_program_is_policy_independent() {
    // The same exchange written with blocking recvs named by source is
    // immune to delivery order — across many seeded policies the result
    // is constant.
    let mut results = BTreeSet::new();
    for seed in 0..8u64 {
        let world = World::new(3);
        let outs = world.run_with_delivery(
            move |rank| -> Box<dyn DeliveryPolicy> {
                Box::new(SeededPolicy::new(seed * 100 + rank as u64).0)
            },
            |comm| {
                if comm.rank() == 0 {
                    let a: u64 = comm.recv(1, 9);
                    let b: u64 = comm.recv(2, 9);
                    a * 10 + b
                } else {
                    comm.send(0, 9, comm.rank() as u64);
                    0
                }
            },
        );
        results.insert(outs[0]);
    }
    assert_eq!(results, BTreeSet::from([12]));
}

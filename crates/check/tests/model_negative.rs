//! Seeded-mutation tests for the protocol model checker: take a *legal*
//! event trace — hand-built or captured from a real instrumented 2×2
//! run — inject one protocol bug, and assert the matching typed property
//! (and only it) catches the mutation. This is the checker's checker:
//! a property that cannot see its target bug is dead weight.

use pcdlb_check::model::{
    check_all_properties, check_global_properties, check_thread_properties, model_check,
    standard_cases,
};
use pcdlb_mp::check::{new_event_log, DeliveryPolicy, EventLog, ProtocolEvent, ReplayPolicy};
use pcdlb_sim::driver::run_digest_instrumented;

// ---------------------------------------------------------------------------
// Hand-built traces
// ---------------------------------------------------------------------------

/// A small legal per-rank trace exercising every per-thread property:
/// two send streams, an epoch advance with a post-advance admission,
/// ordered consumption, and a balanced pool session.
fn legal_thread_trace() -> Vec<ProtocolEvent> {
    vec![
        ProtocolEvent::Birth { rank: 0 },
        ProtocolEvent::PoolCheckout {
            pool: 1,
            slot: 0xa0,
        },
        ProtocolEvent::Send {
            src: 0,
            dst: 1,
            tag: 7,
            seq: 0,
            epoch: 0,
        },
        ProtocolEvent::Send {
            src: 0,
            dst: 1,
            tag: 7,
            seq: 1,
            epoch: 0,
        },
        ProtocolEvent::Admit {
            dst: 0,
            src: 1,
            tag: 7,
            seq: 0,
            epoch: 0,
        },
        ProtocolEvent::Recv {
            dst: 0,
            src: 1,
            tag: 7,
            seq: 0,
            epoch: 0,
            probe: false,
        },
        ProtocolEvent::Admit {
            dst: 0,
            src: 1,
            tag: 7,
            seq: 1,
            epoch: 0,
        },
        ProtocolEvent::Recv {
            dst: 0,
            src: 1,
            tag: 7,
            seq: 1,
            epoch: 0,
            probe: false,
        },
        ProtocolEvent::EpochAdvance { rank: 0, epoch: 1 },
        ProtocolEvent::Admit {
            dst: 0,
            src: 1,
            tag: 9,
            seq: 0,
            epoch: 1,
        },
        ProtocolEvent::PoolCheckin {
            pool: 1,
            slot: 0xa0,
        },
        ProtocolEvent::PoolDrop {
            pool: 1,
            panicking: false,
        },
    ]
}

/// Every mutation below starts from a trace the checker accepts.
#[test]
fn legal_trace_is_clean() {
    assert!(check_thread_properties(0, &legal_thread_trace()).is_empty());
}

/// Mutation: skip a seq increment — the second send jumps 0 → 2.
#[test]
fn skipped_seq_increment_is_caught_by_send_gapless() {
    let mut t = legal_thread_trace();
    let pos = t
        .iter()
        .position(|e| matches!(e, ProtocolEvent::Send { seq: 1, .. }))
        .expect("trace has a second send");
    t[pos] = ProtocolEvent::Send {
        src: 0,
        dst: 1,
        tag: 7,
        seq: 2,
        epoch: 0,
    };
    let v = check_thread_properties(0, &t);
    assert_eq!(v.len(), 1, "exactly the targeted property fires: {v:?}");
    assert_eq!(v[0].property, "send-gapless");
    assert!(v[0].detail.contains("seq 1 expected"), "{}", v[0].detail);
}

/// Mutation: omit an epoch bump — the receiver admits epoch-1 traffic
/// without ever having advanced past epoch 0.
#[test]
fn omitted_epoch_bump_is_caught_by_epoch_monotone() {
    let mut t = legal_thread_trace();
    t.retain(|e| !matches!(e, ProtocolEvent::EpochAdvance { .. }));
    let v = check_thread_properties(0, &t);
    assert!(
        v.iter().any(|v| v.property == "epoch-monotone"),
        "missing advance must surface as an epoch violation: {v:?}"
    );
}

/// Mutation: epoch advance goes backwards.
#[test]
fn epoch_regression_is_caught_by_epoch_monotone() {
    let mut t = legal_thread_trace();
    t.push(ProtocolEvent::EpochAdvance { rank: 0, epoch: 0 });
    let v = check_thread_properties(0, &t);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].property, "epoch-monotone");
    assert!(v[0].detail.contains("backwards"), "{}", v[0].detail);
}

/// Mutation: double-checkin a pool buffer.
#[test]
fn double_checkin_is_caught_by_pool_balance() {
    let mut t = legal_thread_trace();
    let pos = t
        .iter()
        .position(|e| matches!(e, ProtocolEvent::PoolCheckin { .. }))
        .expect("trace has a checkin");
    t.insert(pos + 1, t[pos]);
    let v = check_thread_properties(0, &t);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].property, "pool-balance");
    assert!(v[0].detail.contains("double checkin"), "{}", v[0].detail);
}

/// Mutation: consume seq 1 before seq 0 on the same stream.
#[test]
fn reordered_consumption_is_caught_by_recv_non_overtaking() {
    let mut t = legal_thread_trace();
    let recvs: Vec<usize> = t
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, ProtocolEvent::Recv { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(recvs.len(), 2);
    t.swap(recvs[0], recvs[1]);
    let v = check_thread_properties(0, &t);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].property, "recv-non-overtaking");
    assert!(v[0].detail.contains("seq 0 after seq 1"), "{}", v[0].detail);
}

/// Mutation: adopt the same dead rank twice (one registered death).
#[test]
fn double_adoption_is_caught_by_adopt_once() {
    let logs = vec![
        vec![
            ProtocolEvent::Birth { rank: 0 },
            ProtocolEvent::Adopt { phys: 0, vrank: 2 },
        ],
        vec![
            ProtocolEvent::Birth { rank: 1 },
            ProtocolEvent::Adopt { phys: 1, vrank: 2 },
        ],
        vec![
            ProtocolEvent::Birth { rank: 2 },
            ProtocolEvent::Death { rank: 2 },
        ],
    ];
    let v = check_global_properties(100, 3, &logs);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].property, "adopt-once");
}

// ---------------------------------------------------------------------------
// Mutations of real captured logs
// ---------------------------------------------------------------------------

/// Run the real 2×2 simulator with full instrumentation (default
/// delivery order) and return the per-rank event logs.
fn captured_2x2_logs() -> (Vec<Vec<ProtocolEvent>>, u64, usize) {
    let case = &standard_cases(4, 4, 50, 5, 2)[0];
    let logs: Vec<EventLog> = (0..case.cfg.p).map(|_| new_event_log()).collect();
    let log_refs = logs.clone();
    run_digest_instrumented(
        &case.cfg,
        |_rank| {
            let (policy, _trace) = ReplayPolicy::new(Vec::new());
            Box::new(policy) as Box<dyn DeliveryPolicy>
        },
        move |rank| log_refs[rank].clone(),
    );
    let rank_logs = logs
        .iter()
        .map(|l| l.lock().expect("log lock").clone())
        .collect();
    (rank_logs, case.cfg.n_particles as u64, case.cfg.p)
}

/// The unmutated capture satisfies every property — the baseline every
/// seeded deletion below perturbs.
#[test]
fn captured_logs_are_clean_and_mutations_are_caught() {
    let (logs, n_particles, p) = captured_2x2_logs();
    assert!(logs.iter().all(|l| !l.is_empty()), "instrumentation ran");
    assert!(
        check_all_properties(n_particles, p, &logs).is_empty(),
        "real run must satisfy every property"
    );

    // Seeded deletion: drop the first admission of a stream that admits
    // again in the same epoch. The survivor's seq now has a gap.
    let mut mutated = logs.clone();
    let (rank, pos) = find_deletable_admit(&mutated).expect("2x2 run admits repeatedly");
    mutated[rank].remove(pos);
    let v = check_all_properties(n_particles, p, &mutated);
    assert!(
        v.iter().any(|v| v.property == "admit-gapless"),
        "deleting an admission must open a seq gap: {v:?}"
    );

    // Seeded corruption: one sentinel report loses a particle; the
    // round's conservation sum no longer matches.
    let mut mutated = logs.clone();
    let (rank, pos, ev) = find_sentinel(&mutated).expect("sentinel interval fired");
    if let ProtocolEvent::Sentinel {
        rank: r,
        step,
        count,
    } = ev
    {
        mutated[rank][pos] = ProtocolEvent::Sentinel {
            rank: r,
            step,
            count: count - 1,
        };
    }
    let v = check_all_properties(n_particles, p, &mutated);
    assert!(
        v.iter().any(|v| v.property == "sentinel-conservation"),
        "losing a particle must break the sentinel sum: {v:?}"
    );

    // Seeded duplication: replay a pool checkin.
    let mut mutated = logs;
    let (rank, pos) = find_checkin(&mutated).expect("pools cycle during a run");
    let dup = mutated[rank][pos];
    mutated[rank].insert(pos + 1, dup);
    let v = check_all_properties(n_particles, p, &mutated);
    assert!(
        v.iter().any(|v| v.property == "pool-balance"),
        "a replayed checkin must unbalance the pool: {v:?}"
    );
}

fn find_deletable_admit(logs: &[Vec<ProtocolEvent>]) -> Option<(usize, usize)> {
    for (rank, events) in logs.iter().enumerate() {
        for (i, ev) in events.iter().enumerate() {
            if let ProtocolEvent::Admit {
                dst,
                src,
                seq: 0,
                epoch,
                ..
            } = *ev
            {
                let succ = events.iter().skip(i + 1).any(|e| {
                    matches!(*e, ProtocolEvent::Admit { dst: d, src: s, seq: 1, epoch: ep, .. }
                             if d == dst && s == src && ep == epoch)
                });
                if succ {
                    return Some((rank, i));
                }
            }
        }
    }
    None
}

fn find_sentinel(logs: &[Vec<ProtocolEvent>]) -> Option<(usize, usize, ProtocolEvent)> {
    for (rank, events) in logs.iter().enumerate() {
        for (i, ev) in events.iter().enumerate() {
            if matches!(ev, ProtocolEvent::Sentinel { count, .. } if *count > 0) {
                return Some((rank, i, *ev));
            }
        }
    }
    None
}

fn find_checkin(logs: &[Vec<ProtocolEvent>]) -> Option<(usize, usize)> {
    for (rank, events) in logs.iter().enumerate() {
        for (i, ev) in events.iter().enumerate() {
            if matches!(ev, ProtocolEvent::PoolCheckin { .. }) {
                return Some((rank, i));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// End-to-end: the checker accepts the real protocol
// ---------------------------------------------------------------------------

/// A short 2×2 case drains its DPOR frontier with zero violations and a
/// single digest — the positive control for the mutations above.
#[test]
fn short_2x2_model_check_is_clean_and_exhausts() {
    let case = &standard_cases(3, 3, 50, 5, 2)[0];
    let out = model_check(case).expect("model check runs");
    assert!(out.exhausted, "2x2 frontier must drain: {out:?}");
    assert!(out.clean(), "violations or digest split: {out:?}");
    assert!(out.choice_points > 0, "instrumentation observed choices");
}

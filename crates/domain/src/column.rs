//! The cross-section grid of cell columns.
//!
//! A *column* is the full z-extent of cells sharing one `(cx, cy)`
//! cross-section coordinate — the unit the square-pillar decomposition
//! allocates and the load balancer moves (the paper's Figs. 3–4 draw the
//! 2-D cross-section; each drawn "cell" is a column of `C^(1/3)` 3-D
//! cells).

use pcdlb_mp::topology::NEIGHBOR_OFFSETS_8;
use pcdlb_mp::WireSize;

/// Cross-section coordinates of a column, each in `0..nc`.
///
/// `cx` runs in the paper's `i` (row) direction, `cy` in the `j` (column)
/// direction, matching the `PE(i, j)` orientation of Figs. 3–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Col {
    pub cx: usize,
    pub cy: usize,
}

impl Col {
    /// Construct from components.
    pub const fn new(cx: usize, cy: usize) -> Self {
        Self { cx, cy }
    }
}

impl WireSize for Col {
    fn wire_size(&self) -> usize {
        16
    }
}

/// The `nc × nc` periodic cross-section grid of columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnGrid {
    nc: usize,
}

impl ColumnGrid {
    /// A grid with `nc` columns per side (`nc = C^(1/3)`).
    pub fn new(nc: usize) -> Self {
        assert!(nc >= 2, "column grid needs at least 2 columns per side");
        Self { nc }
    }

    /// Columns per side.
    pub fn nc(&self) -> usize {
        self.nc
    }

    /// Total number of columns (`nc²`).
    pub fn len(&self) -> usize {
        self.nc * self.nc
    }

    /// Never empty (`nc ≥ 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of a column (`cx` major).
    pub fn index(&self, c: Col) -> usize {
        debug_assert!(c.cx < self.nc && c.cy < self.nc, "{c:?} outside {self:?}");
        c.cx * self.nc + c.cy
    }

    /// Inverse of [`ColumnGrid::index`].
    pub fn col_of(&self, idx: usize) -> Col {
        debug_assert!(idx < self.len());
        Col::new(idx / self.nc, idx % self.nc)
    }

    /// The column at `(cx, cy)` after periodic wrap.
    pub fn wrapped(&self, cx: i64, cy: i64) -> Col {
        let n = self.nc as i64;
        Col::new(cx.rem_euclid(n) as usize, cy.rem_euclid(n) as usize)
    }

    /// The 8 cross-section neighbours of a column (periodic). On grids
    /// with `nc = 2` some entries coincide.
    pub fn neighbors8(&self, c: Col) -> [Col; 8] {
        let mut out = [Col::new(0, 0); 8];
        for (k, (dx, dy)) in NEIGHBOR_OFFSETS_8.iter().enumerate() {
            out[k] = self.wrapped(c.cx as i64 + dx, c.cy as i64 + dy);
        }
        out
    }

    /// Iterate all columns in index order.
    pub fn iter(&self) -> impl Iterator<Item = Col> + '_ {
        (0..self.len()).map(|i| self.col_of(i))
    }

    /// Periodic Chebyshev (king-move) distance between two columns: 0 for
    /// the same column, 1 for 8-adjacent ones.
    pub fn chebyshev(&self, a: Col, b: Col) -> usize {
        let d = |p: usize, q: usize| {
            let d = p.abs_diff(q);
            d.min(self.nc - d)
        };
        d(a.cx, b.cx).max(d(a.cy, b.cy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_roundtrip() {
        let g = ColumnGrid::new(7);
        for i in 0..g.len() {
            assert_eq!(g.index(g.col_of(i)), i);
        }
    }

    #[test]
    fn wrapped_handles_negatives_and_overflow() {
        let g = ColumnGrid::new(6);
        assert_eq!(g.wrapped(-1, 6), Col::new(5, 0));
        assert_eq!(g.wrapped(7, -2), Col::new(1, 4));
    }

    #[test]
    fn neighbors8_interior() {
        let g = ColumnGrid::new(5);
        let n = g.neighbors8(Col::new(2, 2));
        let mut v = n.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 8);
        for c in v {
            assert_eq!(g.chebyshev(Col::new(2, 2), c), 1);
        }
    }

    #[test]
    fn neighbors8_wrap_at_corner() {
        let g = ColumnGrid::new(4);
        let n = g.neighbors8(Col::new(0, 0));
        assert!(n.contains(&Col::new(3, 3))); // NW wraps
        assert!(n.contains(&Col::new(0, 3)));
        assert!(n.contains(&Col::new(3, 0)));
    }

    #[test]
    fn chebyshev_is_periodic() {
        let g = ColumnGrid::new(8);
        assert_eq!(g.chebyshev(Col::new(0, 0), Col::new(7, 7)), 1);
        assert_eq!(g.chebyshev(Col::new(0, 0), Col::new(4, 0)), 4);
        assert_eq!(g.chebyshev(Col::new(1, 1), Col::new(1, 1)), 0);
    }

    #[test]
    fn iter_visits_all_once() {
        let g = ColumnGrid::new(4);
        let cols: Vec<Col> = g.iter().collect();
        assert_eq!(cols.len(), 16);
        let mut dedup = cols.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    proptest! {
        #[test]
        fn prop_adjacency_matches_chebyshev(nc in 3usize..10, cx in 0usize..10, cy in 0usize..10) {
            let g = ColumnGrid::new(nc);
            let c = Col::new(cx % nc, cy % nc);
            for other in g.iter() {
                let adjacent = g.neighbors8(c).contains(&other);
                let cheb1 = g.chebyshev(c, other) == 1;
                prop_assert_eq!(adjacent, cheb1, "c={:?} other={:?}", c, other);
            }
        }

        #[test]
        fn prop_neighbor_relation_is_symmetric(nc in 2usize..9, cx in 0usize..9, cy in 0usize..9) {
            let g = ColumnGrid::new(nc);
            let c = Col::new(cx % nc, cy % nc);
            for n in g.neighbors8(c) {
                prop_assert!(g.neighbors8(n).contains(&c));
            }
        }
    }
}

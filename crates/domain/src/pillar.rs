//! Square-pillar tile layout (paper Fig. 7).
//!
//! `P` PEs form a `√P × √P` torus; the `nc × nc` column cross-section is
//! tiled into `m × m` blocks, `m = nc / √P`, one home tile per PE. PE
//! `(i, j)` owns tile rows `i·m .. (i+1)·m` and tile columns
//! `j·m .. (j+1)·m` of the cross-section.

use pcdlb_mp::Torus2d;

use crate::column::{Col, ColumnGrid};

/// The static geometry of a square-pillar decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PillarLayout {
    grid: ColumnGrid,
    torus: Torus2d,
    m: usize,
}

impl PillarLayout {
    /// Layout for `nc = C^(1/3)` columns per side over a `√P × √P` torus.
    /// `nc` must be an exact multiple of the torus side (the paper's
    /// `m = C^(1/3)/P^(1/2)` is integral in every experiment).
    pub fn new(nc: usize, torus: Torus2d) -> Self {
        assert_eq!(
            torus.rows(),
            torus.cols(),
            "square-pillar layout needs a square torus"
        );
        let side = torus.rows();
        assert!(
            nc.is_multiple_of(side),
            "columns per side ({nc}) must divide evenly among torus side ({side})"
        );
        let m = nc / side;
        assert!(m >= 1, "tile size m must be at least 1");
        Self {
            grid: ColumnGrid::new(nc),
            torus,
            m,
        }
    }

    /// Layout from the paper's parameters `P` (perfect square) and `m`.
    pub fn from_p_and_m(p: usize, m: usize) -> Self {
        let torus = Torus2d::square(p);
        Self::new(torus.rows() * m, torus)
    }

    /// Tile size `m` (columns per tile side).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The cross-section grid.
    pub fn grid(&self) -> ColumnGrid {
        self.grid
    }

    /// The PE torus.
    pub fn torus(&self) -> Torus2d {
        self.torus
    }

    /// Number of PEs.
    pub fn num_ranks(&self) -> usize {
        self.torus.len()
    }

    /// The home PE of a column — the PE whose tile contains it initially
    /// and to which it must eventually be returnable.
    pub fn home_rank(&self, c: Col) -> usize {
        let ti = c.cx / self.m;
        let tj = c.cy / self.m;
        self.torus.rank_wrapped(ti as i64, tj as i64)
    }

    /// `(cx, cy)` of the north-west corner column of `rank`'s home tile.
    pub fn tile_origin(&self, rank: usize) -> Col {
        let (i, j) = self.torus.coords(rank);
        Col::new(i * self.m, j * self.m)
    }

    /// A column's offset inside its home tile, each component in `0..m`.
    pub fn offset_in_tile(&self, c: Col) -> (usize, usize) {
        (c.cx % self.m, c.cy % self.m)
    }

    /// Iterate the columns of `rank`'s home tile in row-major order.
    pub fn tile_columns(&self, rank: usize) -> impl Iterator<Item = Col> + '_ {
        let o = self.tile_origin(rank);
        let m = self.m;
        (0..m).flat_map(move |dx| (0..m).map(move |dy| Col::new(o.cx + dx, o.cy + dy)))
    }

    /// Tile-to-tile displacement from `from`'s tile to `to`'s tile on the
    /// torus, each component folded into `-side/2 ..= side/2` (the
    /// shortest wrap). `(0, 0)` means the same PE; `(±1, ±1)` etc. are the
    /// 8-neighbourhood.
    pub fn tile_delta(&self, from: usize, to: usize) -> (i64, i64) {
        let side = self.torus.rows() as i64;
        let (fi, fj) = self.torus.coords(from);
        let (ti, tj) = self.torus.coords(to);
        let fold = |d: i64| {
            let d = d.rem_euclid(side);
            if d > side / 2 {
                d - side
            } else {
                d
            }
        };
        (fold(ti as i64 - fi as i64), fold(tj as i64 - fj as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_configurations_have_expected_m() {
        // Fig. 5(a): P = 36, C = 24³ → m = 4.
        assert_eq!(PillarLayout::new(24, Torus2d::square(36)).m(), 4);
        // Fig. 5(b): P = 36, C = 12³ → m = 2.
        assert_eq!(PillarLayout::new(12, Torus2d::square(36)).m(), 2);
        // Table 1 row: P = 64, m = 3 → nc = 24.
        let l = PillarLayout::from_p_and_m(64, 3);
        assert_eq!(l.grid().nc(), 24);
    }

    #[test]
    fn tiles_partition_all_columns() {
        let l = PillarLayout::new(12, Torus2d::square(9));
        let mut seen = vec![0u32; l.grid().len()];
        for r in 0..l.num_ranks() {
            for c in l.tile_columns(r) {
                seen[l.grid().index(c)] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "tiles must tile exactly once");
    }

    #[test]
    fn home_rank_matches_tile_membership() {
        let l = PillarLayout::new(12, Torus2d::square(16));
        for r in 0..l.num_ranks() {
            for c in l.tile_columns(r) {
                assert_eq!(l.home_rank(c), r, "column {c:?}");
            }
        }
    }

    #[test]
    fn offsets_stay_inside_tile() {
        let l = PillarLayout::new(12, Torus2d::square(9)); // m = 4
        for c in l.grid().iter() {
            let (ox, oy) = l.offset_in_tile(c);
            assert!(ox < 4 && oy < 4);
            let o = l.tile_origin(l.home_rank(c));
            assert_eq!(Col::new(o.cx + ox, o.cy + oy), c);
        }
    }

    #[test]
    fn tile_delta_folds_shortest_way() {
        let l = PillarLayout::new(12, Torus2d::square(36)); // 6×6 torus
        let t = l.torus();
        let r00 = t.rank_wrapped(0, 0);
        let r55 = t.rank_wrapped(5, 5);
        assert_eq!(l.tile_delta(r00, r55), (-1, -1)); // wraps NW
        let r01 = t.rank_wrapped(0, 1);
        assert_eq!(l.tile_delta(r00, r01), (0, 1));
        assert_eq!(l.tile_delta(r00, r00), (0, 0));
        let r30 = t.rank_wrapped(3, 0);
        assert_eq!(l.tile_delta(r00, r30), (3, 0)); // 3 = side/2 stays +3
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_tiling_rejected() {
        let _ = PillarLayout::new(13, Torus2d::square(9));
    }

    proptest! {
        #[test]
        fn prop_home_rank_consistent_with_origin(side in 2usize..6, m in 1usize..5,
                                                 cx in 0usize..30, cy in 0usize..30) {
            let l = PillarLayout::new(side * m, Torus2d::new(side, side));
            let c = Col::new(cx % (side * m), cy % (side * m));
            let r = l.home_rank(c);
            let o = l.tile_origin(r);
            prop_assert!(c.cx >= o.cx && c.cx < o.cx + m);
            prop_assert!(c.cy >= o.cy && c.cy < o.cy + m);
        }

        #[test]
        fn prop_tile_delta_antisymmetric(side in 3usize..7, a in 0usize..49, b in 0usize..49) {
            let l = PillarLayout::new(side * 2, Torus2d::new(side, side));
            let (a, b) = (a % l.num_ranks(), b % l.num_ranks());
            let (di, dj) = l.tile_delta(a, b);
            let (ei, ej) = l.tile_delta(b, a);
            // Antisymmetric except at the fold boundary side/2, where both
            // directions legitimately report +side/2.
            let s = side as i64;
            let eqmod = |x: i64, y: i64| (x + y).rem_euclid(s) == 0;
            prop_assert!(eqmod(di, ei) && eqmod(dj, ej),
                "delta({a},{b})=({di},{dj}), delta({b},{a})=({ei},{ej})");
        }
    }
}

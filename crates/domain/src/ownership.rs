//! Dynamic column ownership.
//!
//! DDM assigns each PE its home tile; DLB then moves ownership of movable
//! columns between 8-neighbouring PEs. [`OwnershipMap`] tracks the global
//! column→owner assignment and provides the structural checks that the
//! permanent-cell scheme is designed to guarantee:
//!
//! - **tile distance** — a column is only ever owned by its home PE or by
//!   the PE one tile to the N/W/NW of its home (the paper's Case 1
//!   transfer directions);
//! - **8-neighbour preservation** — any two adjacent columns belong to
//!   PEs that are equal or mutual 8-neighbours on the torus, so no PE
//!   ever needs to talk past its 8-neighbourhood (the wall property of
//!   Fig. 3);
//! - **ghost containment** — every ghost source of a PE (owner of a
//!   column adjacent to one of its own) is within its 8-neighbourhood.
//!
//! The map is deliberately mechanism-only: *which* columns may move (the
//! permanent/movable classification) and *when* (the Case 1–3 rules) live
//! in `pcdlb-core`, which drives this map and whose property tests assert
//! the checks above hold under arbitrary valid protocol executions.

use std::collections::BTreeSet;

use crate::column::Col;
use crate::pillar::PillarLayout;

/// Global column→owner assignment over a square-pillar layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipMap {
    layout: PillarLayout,
    owner: Vec<usize>,
}

impl OwnershipMap {
    /// The initial DDM assignment: every column owned by its home PE.
    pub fn initial(layout: PillarLayout) -> Self {
        let owner = (0..layout.grid().len())
            .map(|i| layout.home_rank(layout.grid().col_of(i)))
            .collect();
        Self { layout, owner }
    }

    /// The layout this map is defined over.
    pub fn layout(&self) -> &PillarLayout {
        &self.layout
    }

    /// Current owner of a column.
    pub fn owner_of(&self, c: Col) -> usize {
        self.owner[self.layout.grid().index(c)]
    }

    /// Transfer ownership of `c` from `from` to `to`. Panics unless `from`
    /// is the current owner — a violated expectation is always a protocol
    /// bug.
    pub fn transfer(&mut self, c: Col, from: usize, to: usize) {
        let idx = self.layout.grid().index(c);
        assert_eq!(
            self.owner[idx], from,
            "transfer of {c:?}: expected owner {from}, found {}",
            self.owner[idx]
        );
        assert!(
            to < self.layout.num_ranks(),
            "transfer to invalid rank {to}"
        );
        self.owner[idx] = to;
    }

    /// Overwrite the owner of `c` without checking the previous owner.
    ///
    /// For the *global* map, [`OwnershipMap::transfer`] is the right call.
    /// `set_owner` exists for per-PE *windowed* views: a PE only hears the
    /// transfer decisions of its 8 neighbours, so entries outside its
    /// readable window can be stale; when a column re-enters the window
    /// through a heard decision, the entry is overwritten from the
    /// decision's authoritative `to` field rather than chained through
    /// transfers the PE never saw.
    pub fn set_owner(&mut self, c: Col, rank: usize) {
        assert!(rank < self.layout.num_ranks(), "invalid rank {rank}");
        let idx = self.layout.grid().index(c);
        self.owner[idx] = rank;
    }

    /// Columns currently owned by `rank`, in index order.
    pub fn owned_columns(&self, rank: usize) -> Vec<Col> {
        let g = self.layout.grid();
        (0..g.len())
            .filter(|&i| self.owner[i] == rank)
            .map(|i| g.col_of(i))
            .collect()
    }

    /// Number of columns owned by `rank`.
    pub fn num_owned(&self, rank: usize) -> usize {
        self.owner.iter().filter(|&&o| o == rank).count()
    }

    /// Columns of `rank`'s home tile currently owned elsewhere, paired
    /// with their current owner.
    pub fn lent_out(&self, rank: usize) -> Vec<(Col, usize)> {
        self.layout
            .tile_columns(rank)
            .filter_map(|c| {
                let o = self.owner_of(c);
                (o != rank).then_some((c, o))
            })
            .collect()
    }

    /// The distinct owners of columns 8-adjacent to `rank`'s owned set
    /// (excluding `rank` itself) — the PEs `rank` must exchange ghost data
    /// with.
    pub fn ghost_sources(&self, rank: usize) -> BTreeSet<usize> {
        let g = self.layout.grid();
        let mut out = BTreeSet::new();
        for c in self.owned_columns(rank) {
            for n in g.neighbors8(c) {
                let o = self.owner_of(n);
                if o != rank {
                    out.insert(o);
                }
            }
        }
        out
    }

    /// Check the tile-distance invariant (see module docs). Returns the
    /// first violation as an error message.
    pub fn check_tile_distance(&self) -> Result<(), String> {
        for c in self.layout.grid().iter() {
            let home = self.layout.home_rank(c);
            let owner = self.owner_of(c);
            let d = self.layout.tile_delta(owner, home);
            // Owner (i,j) may hold columns of tiles (i,j), (i+1,j),
            // (i,j+1), (i+1,j+1): home = owner + {0,1}².
            if !matches!(d, (0, 0) | (1, 0) | (0, 1) | (1, 1)) {
                return Err(format!(
                    "column {c:?} (home {home}) owned by {owner}, tile delta {d:?}"
                ));
            }
        }
        Ok(())
    }

    /// Check 8-neighbour preservation: adjacent columns always belong to
    /// equal or 8-neighbouring PEs.
    pub fn check_eight_neighbor(&self) -> Result<(), String> {
        let g = self.layout.grid();
        let t = self.layout.torus();
        for c in g.iter() {
            let oc = self.owner_of(c);
            for n in g.neighbors8(c) {
                let on = self.owner_of(n);
                if oc != on && !t.neighbors8(oc).contains(&on) {
                    return Err(format!(
                        "adjacent columns {c:?} (owner {oc}) and {n:?} (owner {on}) \
                         belong to non-neighbouring PEs"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check ghost containment for every rank: all ghost sources within
    /// the torus 8-neighbourhood.
    pub fn check_ghost_containment(&self) -> Result<(), String> {
        let t = self.layout.torus();
        for rank in 0..self.layout.num_ranks() {
            let allowed: BTreeSet<usize> = t.distinct_neighbors8(rank).into_iter().collect();
            for src in self.ghost_sources(rank) {
                if !allowed.contains(&src) {
                    return Err(format!(
                        "rank {rank} needs ghost data from non-neighbour {src}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Run every structural check.
    pub fn check_all(&self) -> Result<(), String> {
        self.check_tile_distance()?;
        self.check_eight_neighbor()?;
        self.check_ghost_containment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcdlb_mp::Torus2d;

    fn layout_9x12() -> PillarLayout {
        // P = 9 (3×3 torus), nc = 12 → m = 4.
        PillarLayout::new(12, Torus2d::square(9))
    }

    #[test]
    fn initial_map_gives_every_rank_m_squared_columns() {
        let om = OwnershipMap::initial(layout_9x12());
        for r in 0..9 {
            assert_eq!(om.num_owned(r), 16);
        }
    }

    #[test]
    fn initial_map_passes_all_checks() {
        let om = OwnershipMap::initial(layout_9x12());
        om.check_all().unwrap();
    }

    #[test]
    fn initial_ghost_sources_are_exactly_the_8_neighbors() {
        let l = layout_9x12();
        let om = OwnershipMap::initial(l);
        for r in 0..9 {
            let expect: BTreeSet<usize> = l.torus().distinct_neighbors8(r).into_iter().collect();
            assert_eq!(om.ghost_sources(r), expect, "rank {r}");
        }
    }

    #[test]
    fn transfer_moves_a_column() {
        let l = layout_9x12();
        let mut om = OwnershipMap::initial(l);
        // Move the NW movable corner of rank 4's tile (center of 3×3
        // torus) to its NW neighbour, rank 0.
        let c = l.tile_origin(4);
        om.transfer(c, 4, 0);
        assert_eq!(om.owner_of(c), 0);
        assert_eq!(om.num_owned(0), 17);
        assert_eq!(om.num_owned(4), 15);
        assert_eq!(om.lent_out(4), vec![(c, 0)]);
        om.check_all().unwrap();
    }

    #[test]
    #[should_panic(expected = "expected owner")]
    fn transfer_from_wrong_owner_panics() {
        let l = layout_9x12();
        let mut om = OwnershipMap::initial(l);
        om.transfer(l.tile_origin(4), 3, 0);
    }

    #[test]
    fn tile_distance_check_catches_far_transfer() {
        let l = layout_9x12();
        let mut om = OwnershipMap::initial(l);
        // Rank 4's column handed to rank 8 (SE neighbour): delta from
        // owner 8 to home 4 is (-1,-1), not in the allowed set.
        om.transfer(l.tile_origin(4), 4, 8);
        assert!(om.check_tile_distance().is_err());
    }

    #[test]
    fn eight_neighbor_check_catches_wall_breach() {
        // P = 16 (4×4 torus) so that non-neighbouring PEs exist.
        let l = PillarLayout::new(8, Torus2d::square(16)); // m = 2
        let mut om = OwnershipMap::initial(l);
        // Hand rank 5's entire tile to rank 0 (its NW neighbour). Rank
        // 5's tile borders rank 10's tile; rank 0 and rank 10 are not
        // neighbours on a 4×4 torus, so the wall is breached.
        let cols: Vec<Col> = l.tile_columns(5).collect();
        for c in cols {
            om.transfer(c, 5, 0);
        }
        assert!(om.check_eight_neighbor().is_err());
        assert!(om.check_ghost_containment().is_err());
    }

    #[test]
    fn permanent_wall_keeps_checks_green() {
        // Same scenario but only the movable (NW (m−1)²) block moves —
        // the permanent row/column stays, and every check passes. This is
        // the paper's core claim in miniature.
        let l = PillarLayout::new(12, Torus2d::square(16)); // m = 3
        let mut om = OwnershipMap::initial(l);
        let o = l.tile_origin(5);
        for dx in 0..2 {
            for dy in 0..2 {
                om.transfer(Col::new(o.cx + dx, o.cy + dy), 5, 0);
            }
        }
        om.check_all().unwrap();
    }

    #[test]
    fn ghost_sources_shrink_when_isolated() {
        // On a 3×3 torus every rank neighbours every other, so ghost
        // sources are all 8 others regardless of transfers.
        let l = layout_9x12();
        let mut om = OwnershipMap::initial(l);
        let o = l.tile_origin(4);
        om.transfer(o, 4, 0);
        assert_eq!(om.ghost_sources(0).len(), 8);
    }
}

//! `pcdlb-domain` — domain decomposition for 3-D cell-based MD.
//!
//! The paper's Sec. 2.2: the `C = nc³` cells of the simulation box are
//! grouped into *domains*, one per PE. Three shapes exist (Fig. 2) —
//! plane, square pillar and cube — and the paper argues the **square
//! pillar** is best for mid-size runs: PEs form a virtual 2-D torus with a
//! simple 8-neighbour relationship, which is the property the
//! permanent-cell load balancer preserves.
//!
//! With square pillars the unit of decomposition (and of load-balancing
//! transfer) is a cell *column*: all `nc` cells sharing an `(cx, cy)`
//! cross-section coordinate. Each PE's home *tile* is an `m × m` block of
//! columns, `m = C^(1/3) / P^(1/2)` (paper Fig. 7).
//!
//! - [`column`]: the cross-section grid of columns and its 8-adjacency;
//! - [`pillar`]: the tile layout mapping columns to home PEs;
//! - [`ownership`]: the dynamic column→owner map plus the structural
//!   invariants the permanent-cell scheme guarantees;
//! - [`shapes`]: communication-volume analysis of the three domain shapes.

pub mod column;
pub mod ownership;
pub mod pillar;
pub mod shapes;

pub use column::{Col, ColumnGrid};
pub use ownership::OwnershipMap;
pub use pillar::PillarLayout;
pub use shapes::DomainShape;

//! Communication-volume analysis of the three domain shapes (paper
//! Fig. 2 and the discussion in Sec. 2.2 / ref. \[8\]).
//!
//! For `C = nc³` cells on `P` PEs the per-PE ghost import per step is the
//! one-cell-thick shell around the domain:
//!
//! | shape | domain | neighbours | ghost cells |
//! |---|---|---|---|
//! | plane | `(nc/P) × nc × nc` | 2 (ring) | `2·nc²` |
//! | square pillar | `m × m × nc`, `m = nc/√P` | 8 (2-D torus) | `((m+2)² − m²)·nc` |
//! | cube | `s³`, `s = nc/P^(1/3)` | 26 (3-D torus) | `(s+2)³ − s³` |
//!
//! Combined with a postal cost model (`messages·α + bytes/β`) this
//! reproduces the paper's claim that the square pillar is the best shape
//! for mid-size simulations on mid-size machines: the plane pays too much
//! bandwidth, the cube too much latency (26 neighbour messages), and the
//! pillar sits in between. The `shapes` bench regenerates the comparison.

use pcdlb_mp::CostModel;

/// The three 3-D domain shapes of paper Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainShape {
    /// Full slabs along one axis; PEs form a ring.
    Plane,
    /// Full-z columns with an `m × m` cross-section; PEs form a 2-D torus.
    SquarePillar,
    /// Cubic blocks; PEs form a 3-D torus.
    Cube,
}

impl DomainShape {
    /// All three shapes, for sweeps.
    pub const ALL: [DomainShape; 3] = [
        DomainShape::Plane,
        DomainShape::SquarePillar,
        DomainShape::Cube,
    ];

    /// Number of neighbouring PEs a domain exchanges ghosts with.
    pub fn neighbor_count(&self) -> usize {
        match self {
            DomainShape::Plane => 2,
            DomainShape::SquarePillar => 8,
            DomainShape::Cube => 26,
        }
    }

    /// Cells per domain, `C/P`, independent of shape.
    pub fn domain_cells(&self, nc: usize, p: usize) -> f64 {
        (nc as f64).powi(3) / p as f64
    }

    /// Ghost (imported) cells per PE per step, allowing fractional domain
    /// extents for analysis sweeps.
    pub fn ghost_cells(&self, nc: usize, p: usize) -> f64 {
        let ncf = nc as f64;
        let pf = p as f64;
        match self {
            DomainShape::Plane => 2.0 * ncf * ncf,
            DomainShape::SquarePillar => {
                let m = ncf / pf.sqrt();
                ((m + 2.0) * (m + 2.0) - m * m) * ncf
            }
            DomainShape::Cube => {
                let s = ncf / pf.cbrt();
                (s + 2.0).powi(3) - s.powi(3)
            }
        }
    }

    /// Modelled per-step ghost-exchange time for one PE: one message per
    /// neighbour plus the ghost volume over the wire, with
    /// `bytes_per_cell` the average payload of one cell's particles.
    pub fn ghost_exchange_time(
        &self,
        nc: usize,
        p: usize,
        bytes_per_cell: f64,
        model: &CostModel,
    ) -> f64 {
        let msgs = self.neighbor_count() as f64;
        let bytes = self.ghost_cells(nc, p) * bytes_per_cell;
        msgs * (model.latency_s + model.per_hop_s) + bytes / model.bandwidth_bps
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DomainShape::Plane => "plane",
            DomainShape::SquarePillar => "square pillar",
            DomainShape::Cube => "cube",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_cells_split_evenly() {
        for s in DomainShape::ALL {
            assert_eq!(s.domain_cells(24, 36), 13824.0 / 36.0);
        }
    }

    #[test]
    fn ghost_cells_closed_forms() {
        // nc = 24, P = 36: plane 2·576 = 1152; pillar m = 4 → 20·24 = 480.
        assert_eq!(DomainShape::Plane.ghost_cells(24, 36), 1152.0);
        assert_eq!(DomainShape::SquarePillar.ghost_cells(24, 36), 480.0);
        // Cube with integral s: nc = 24, P = 64 → s = 6 → 8³−6³ = 296.
        assert_eq!(DomainShape::Cube.ghost_cells(24, 64), 296.0);
    }

    #[test]
    fn cube_has_least_volume_but_most_messages() {
        let (nc, p) = (24, 64);
        assert!(
            DomainShape::Cube.ghost_cells(nc, p) < DomainShape::SquarePillar.ghost_cells(nc, p)
        );
        assert!(
            DomainShape::SquarePillar.ghost_cells(nc, p) < DomainShape::Plane.ghost_cells(nc, p)
        );
        assert!(DomainShape::Cube.neighbor_count() > DomainShape::SquarePillar.neighbor_count());
    }

    #[test]
    fn pillar_wins_the_paper_midsize_configuration() {
        // The paper's Fig. 5(a) configuration: C = 24³, P = 36, ~4.3
        // particles per cell at 56 B each.
        let model = CostModel::t3e(None);
        let bytes_per_cell = 4.3 * 56.0;
        let t: Vec<f64> = DomainShape::ALL
            .iter()
            .map(|s| s.ghost_exchange_time(24, 36, bytes_per_cell, &model))
            .collect();
        let (plane, pillar, cube) = (t[0], t[1], t[2]);
        assert!(pillar < plane, "pillar {pillar} should beat plane {plane}");
        assert!(pillar < cube, "pillar {pillar} should beat cube {cube}");
    }

    #[test]
    fn plane_wins_at_tiny_pe_counts() {
        // With P = 4 the pillar's extra messages cost more than the
        // plane's modest bandwidth edge at small nc.
        let model = CostModel::t3e(None);
        let plane = DomainShape::Plane.ghost_exchange_time(8, 4, 100.0, &model);
        let pillar = DomainShape::SquarePillar.ghost_exchange_time(8, 4, 100.0, &model);
        assert!(plane < pillar, "plane {plane} vs pillar {pillar}");
    }

    #[test]
    fn cube_wins_at_massive_scale() {
        // The paper: "cube domain is suitable for large-scale MD
        // simulations on massively parallel computers". Large C and P,
        // bandwidth-dominated.
        let model = CostModel::t3e(None);
        let bytes_per_cell = 10.0 * 56.0;
        let pillar =
            DomainShape::SquarePillar.ghost_exchange_time(512, 4096, bytes_per_cell, &model);
        let cube = DomainShape::Cube.ghost_exchange_time(512, 4096, bytes_per_cell, &model);
        assert!(cube < pillar, "cube {cube} vs pillar {pillar}");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external `rand` dependency is replaced by this local shim that
//! implements exactly the subset the workspace uses: `StdRng` seeded with
//! `seed_from_u64`, `Rng::gen::<f64>()` and `Rng::gen_range` over
//! primitive ranges. The generator is a fixed xoshiro256++ — sequences
//! are deterministic per seed and stable across platforms and releases,
//! which is *stronger* than the real `rand`'s stability guarantee and
//! exactly what the reproducibility tests in this repo need.
//!
//! Values differ from the real `rand::StdRng` stream; nothing in the
//! workspace depends on particular draws, only on determinism.

use std::ops::Range;

pub mod rngs {
    pub use crate::StdRng;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, splitmix64-expanded into full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

/// Types samplable by [`Rng::gen_range`].
pub trait UniformSample: Sized {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The standard seedable generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Uniform `[0, 1)` double from the top 53 bits.
fn unit_f64<R: Rng>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + unit_f64(rng) * (range.end - range.start)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

uniform_int!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_doubles_land_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let k = r.gen_range(3usize..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn draws_cover_the_range_reasonably() {
        // Crude uniformity sanity check: all deciles hit.
        let mut r = StdRng::seed_from_u64(5);
        let mut hits = [0u32; 10];
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            hits[(x * 10.0) as usize] += 1;
        }
        assert!(hits.iter().all(|&h| h > 700), "{hits:?}");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this local shim
//! implements the subset of proptest this workspace's property tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]`
//! header, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `any::<T>()`,
//! range and tuple strategies, `prop::collection::vec`, and `prop_map`.
//!
//! Differences from the real crate, deliberate and safe for this repo:
//!
//! - **no shrinking** — a failing case reports the panic message of its
//!   first failure rather than a minimised counterexample;
//! - **deterministic seeds** — each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly without a
//!   `proptest-regressions` directory;
//! - cases default to 64 per test (`ProptestConfig::with_cases` to
//!   change), and rejected cases (`prop_assume!`) retry up to 20× the
//!   case budget, mirroring proptest's global rejection cap.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` module alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// One generated case's outcome, threaded through the proptest! body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject,
    /// `prop_assert!`-family failure: the property is violated.
    Fail(String),
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest! { ... }` block: an optional config header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut drawn: u32 = 0;
                while accepted < cfg.cases {
                    drawn += 1;
                    assert!(
                        drawn <= cfg.cases.saturating_mul(20).max(100),
                        "proptest `{}`: too many cases rejected by prop_assume!",
                        stringify!($name)
                    );
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest `{}` case {} failed: {}", stringify!($name), drawn, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(x in 3usize..17, (a, b) in (0.0f64..1.0, -5i64..5)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((-5..5).contains(&b), "b = {}", b);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_length_range(
            v in crate::collection::vec(0u64..100, 2..6)
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn prop_map_transforms(s in (1usize..4).prop_map(|n| vec![7u8; n])) {
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert_eq!(s[0], 7);
        }

        #[test]
        fn any_generates(x in any::<u64>(), flag in any::<bool>()) {
            // Consume both; nothing to assert beyond type-correctness.
            let _ = (x, flag);
            prop_assert!(true);
        }
    }

    // Expanded without `#[test]` (the attribute list is optional in the
    // matcher) so the panic path can be asserted on from a real test below.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        fn always_fails(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let caught = std::panic::catch_unwind(always_fails);
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
    }

    #[test]
    fn seeds_are_stable_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("stable");
        let mut b = crate::test_runner::TestRng::from_name("stable");
        for _ in 0..10 {
            assert_eq!((0usize..1000).pick(&mut a), (0usize..1000).pick(&mut b));
        }
    }
}

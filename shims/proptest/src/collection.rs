//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` of values from `element`, with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.pick(rng)).collect()
    }
}

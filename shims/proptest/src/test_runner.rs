//! Test-run configuration and the deterministic case RNG.

/// Per-`proptest!` configuration (subset of the real ProptestConfig).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        assert!(cases > 0, "need at least one case");
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG (xoshiro-style splitmix chain), seeded from
/// the test function's name so failures reproduce without a regressions
/// file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

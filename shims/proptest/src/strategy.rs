//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `f` (retried by the runner via
    /// rejection, like `prop_assume!`). Kept minimal: filtering draws up
    /// to 100 fresh values before giving up.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Strategies behind references generate what the referent does — lets
/// `pick` take the strategy by reference in the `proptest!` expansion.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100 {
            let v = self.inner.pick(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 100 consecutive draws: {}",
            self.reason
        );
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: the full-range strategy for a primitive.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Marker strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitives with a canonical full-range distribution.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf,
        // which no test in this workspace wants from `any::<f64>()`.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleRange,
{
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self)
    }
}

/// Primitives uniformly samplable from a half-open range.
pub trait SampleRange: Sized + Copy {
    fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self;
}

macro_rules! sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty strategy range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

sample_uint!(usize, u64, u32, u16, u8);

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty strategy range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

sample_int!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty strategy range");
        range.start + rng.unit_f64() * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample(rng: &mut TestRng, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty strategy range");
        range.start + (rng.unit_f64() as f32) * (range.end - range.start)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleRangeInclusive,
{
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, self)
    }
}

/// Integers uniformly samplable from a closed range.
pub trait SampleRangeInclusive: Sized + Copy {
    fn sample_inclusive(rng: &mut TestRng, range: &RangeInclusive<Self>) -> Self;
}

macro_rules! sample_incl {
    ($($t:ty),*) => {$(
        impl SampleRangeInclusive for $t {
            fn sample_inclusive(rng: &mut TestRng, range: &RangeInclusive<Self>) -> Self {
                let (lo, hi) = (*range.start() as i128, *range.end() as i128);
                assert!(lo <= hi, "empty strategy range");
                // i128 span arithmetic never overflows for ≤64-bit types.
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

sample_incl!(usize, u64, u32, u16, u8, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

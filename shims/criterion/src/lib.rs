//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`/`throughput`, `BenchmarkId`,
//! `black_box` — over a simple best-of-N wall-clock timer. No statistics,
//! no HTML reports; each benchmark prints one line:
//!
//! ```text
//! bench <name> ... <best per-iter> (N iters × S samples)
//! ```
//!
//! Good enough to keep `cargo bench` runnable and the bench sources
//! compiling offline; real statistical runs belong on a machine with the
//! actual criterion crate.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (each sample re-runs the
    /// iteration closure).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration workload (printed, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Declared per-iteration workload (accepted, not analysed).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure; `iter` times the workload.
pub struct Bencher {
    sample_size: usize,
    best: Option<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            best: None,
            iters_per_sample: 0,
        }
    }

    /// Time `f`, keeping the best mean-per-iteration across samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: grow the iteration count until one sample takes
        // ≥ 2 ms, so cheap closures aren't dominated by timer overhead.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed() / iters as u32;
            best = best.min(dt);
        }
        self.best = Some(best);
        self.iters_per_sample = iters;
    }

    fn report(&self, name: &str) {
        match self.best {
            Some(best) => println!(
                "bench {name:<48} {} ({} iters × {} samples)",
                HumanDuration(best),
                self.iters_per_sample,
                self.sample_size
            ),
            None => println!("bench {name:<48} (no iter() call)"),
        }
    }
}

struct HumanDuration(Duration);

impl Display for HumanDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.2} s", ns as f64 / 1e9)
        }
    }
}

/// `criterion_group!` — both the plain and the `name/config/targets`
/// forms used in the wild.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — the binary entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = trivial
    }

    #[test]
    fn groups_run_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}

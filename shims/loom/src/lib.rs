//! In-tree stand-in for the `loom` concurrency model checker.
//!
//! The real loom is not vendorable here (offline build), so this shim
//! implements the subset of its API the workspace uses, backed by a
//! genuine — if much simpler — schedule explorer:
//!
//! - [`model`] runs the closure repeatedly, once per distinct schedule,
//!   until the DFS over scheduling choices is exhausted.
//! - Every logical thread is a real OS thread, but a cooperative token
//!   scheduler lets exactly **one** run at a time. Each instrumented
//!   operation (atomic access, mutex lock/unlock, `Arc` clone/drop,
//!   condvar wait/notify, spawn) is a *schedule point*: the scheduler may
//!   switch to any other runnable thread there, and each point with ≥ 2
//!   runnable threads is a recorded branching choice the DFS backtracks
//!   over.
//! - Blocked threads (mutex contention, condvar waits, joins) are tracked
//!   as blocked — never spun — so "every thread blocked" is detected
//!   exactly. A blocked state with only *timed* condvar waiters wakes one
//!   of them with a timeout (that is the only way time "passes" here); a
//!   blocked state with none is reported as a deadlock, which doubles as
//!   a lost-wakeup detector: see [`deadlock_breaks`].
//!
//! Limitations vs. real loom, accepted deliberately: memory ordering is
//! sequentially consistent only (orderings are ignored), `notify_one`
//! wakes the lowest-id waiter rather than branching over wake orders, and
//! there is no preemption bounding — exploration is exhaustive up to
//! `LOOM_MAX_ITERATIONS` (default 20 000).

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

/// Panic payload used to unwind cooperating threads when the model is
/// torn down (deadlock, or a panic on another thread).
struct Teardown;

/// How a non-runnable thread is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockOn {
    /// Waiting to acquire the mutex with this id.
    Lock(usize),
    /// Waiting on the condvar with this id; `timed` waits may be woken by
    /// the deadlock-breaker with a timeout.
    Cond { cond: usize, timed: bool },
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Called `yield_now`: not schedulable until some other thread runs
    /// (all Yielded threads revert to Runnable after the next pick), so a
    /// yielding spin loop always lets its peers make progress.
    Yielded,
    Blocked(BlockOn),
    Finished,
}

/// One recorded scheduling decision: how many threads were runnable and
/// which (by index into the sorted runnable set) ran.
#[derive(Debug, Clone, Copy)]
struct Choice {
    arity: usize,
    taken: usize,
}

#[derive(Default)]
struct Sched {
    states: Vec<TState>,
    /// Deadlock-break wakeups set this; consumed by the woken waiter.
    timed_out: Vec<bool>,
    current: usize,
    prefix: Vec<usize>,
    trace: Vec<Choice>,
    /// First non-teardown panic payload of any thread.
    panic: Option<Box<dyn Any + Send>>,
    tearing_down: bool,
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
    deadlock_breaks: usize,
    /// Involuntary context switches taken so far this iteration; bounded
    /// by `LOOM_MAX_PREEMPTIONS` (default 2), like real loom, to keep the
    /// schedule space tractable. Voluntary switches (block, yield,
    /// finish) are always free.
    preemptions: usize,
}

fn preemption_bound() -> usize {
    std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

use std::any::Any;

struct Scheduler {
    m: StdMutex<Sched>,
    cv: StdCondvar,
}

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Self {
        Self {
            m: StdMutex::new(Sched {
                prefix,
                ..Sched::default()
            }),
            cv: StdCondvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(&self) -> usize {
        let mut s = self.locked();
        s.states.push(TState::Runnable);
        s.timed_out.push(false);
        s.handles.push(None);
        s.states.len() - 1
    }

    /// Pick the next thread to run. Called with the lock held by whichever
    /// thread just yielded, blocked, or finished.
    fn pick(&self, s: &mut Sched) {
        if s.tearing_down {
            self.cv.notify_all();
            return;
        }
        let mut runnable: Vec<usize> = (0..s.states.len())
            .filter(|&i| s.states[i] == TState::Runnable)
            .collect();
        if runnable.is_empty() {
            // Yielded threads are schedulable again once nobody else is.
            for i in 0..s.states.len() {
                if s.states[i] == TState::Yielded {
                    s.states[i] = TState::Runnable;
                    runnable.push(i);
                }
            }
        }
        if runnable.is_empty() {
            // Only time itself can unblock a timed condvar waiter; model
            // its expiry exactly when nothing else can happen.
            let timed: Option<usize> = (0..s.states.len()).find(|&i| {
                matches!(
                    s.states[i],
                    TState::Blocked(BlockOn::Cond { timed: true, .. })
                )
            });
            if let Some(t) = timed {
                s.states[t] = TState::Runnable;
                s.timed_out[t] = true;
                s.deadlock_breaks += 1;
                if s.deadlock_breaks > 1024 {
                    s.panic = Some(Box::new(
                        "loom shim: livelock — over 1024 timed-wait expiries with no progress"
                            .to_string(),
                    ));
                    s.tearing_down = true;
                    self.cv.notify_all();
                    return;
                }
                s.current = t;
                self.cv.notify_all();
                return;
            }
            if s.states.iter().all(|t| *t == TState::Finished) {
                self.cv.notify_all();
                return;
            }
            s.panic = Some(Box::new(format!(
                "loom shim: deadlock — every live thread is blocked ({:?})",
                s.states
            )));
            s.tearing_down = true;
            self.cv.notify_all();
            return;
        }
        // A switch away from a still-runnable current thread is a
        // preemption; once the budget is spent the current thread runs on
        // uninterrupted (no branching choice recorded).
        let cur = s.current;
        let cur_runnable = runnable.contains(&cur);
        if cur_runnable && s.preemptions >= preemption_bound() {
            for i in 0..s.states.len() {
                if s.states[i] == TState::Yielded {
                    s.states[i] = TState::Runnable;
                }
            }
            self.cv.notify_all();
            return;
        }
        let taken = if runnable.len() == 1 {
            0
        } else {
            let depth = s.trace.len();
            let want = s.prefix.get(depth).copied().unwrap_or(0);
            let taken = want.min(runnable.len() - 1);
            s.trace.push(Choice {
                arity: runnable.len(),
                taken,
            });
            taken
        };
        let chosen = runnable[taken];
        if cur_runnable && chosen != cur {
            s.preemptions += 1;
        }
        s.current = chosen;
        // Whoever was parked by yield_now has now "seen" another pick;
        // they compete again from the next schedule point on.
        for i in 0..s.states.len() {
            if s.states[i] == TState::Yielded {
                s.states[i] = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Wait (really blocked, no spin) until this thread holds the token.
    /// Panics with [`Teardown`] if the model is being torn down.
    fn wait_for_token(&self, me: usize) {
        let mut s = self.locked();
        loop {
            if s.tearing_down {
                drop(s);
                std::panic::panic_any(Teardown);
            }
            if s.current == me && s.states[me] == TState::Runnable {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Schedule point: offer the token to any runnable thread (including
    /// this one), then wait to run again.
    fn yield_point(&self, me: usize) {
        {
            let mut s = self.locked();
            self.pick(&mut s);
        }
        self.wait_for_token(me);
    }

    /// Voluntary yield: park this thread as `Yielded` so the next pick
    /// must choose someone else if anyone else can run (free — not a
    /// preemption). A yielding spin loop therefore cannot starve peers.
    fn yield_soft(&self, me: usize) {
        {
            let mut s = self.locked();
            s.states[me] = TState::Yielded;
            self.pick(&mut s);
        }
        self.wait_for_token(me);
    }

    /// Block this thread on `on` and run something else; returns once the
    /// thread has been woken *and* scheduled. Returns the timed-out flag.
    fn block_on(&self, me: usize, on: BlockOn) -> bool {
        {
            let mut s = self.locked();
            s.states[me] = TState::Blocked(on);
            self.pick(&mut s);
        }
        self.wait_for_token(me);
        let mut s = self.locked();
        std::mem::take(&mut s.timed_out[me])
    }

    /// Wake every thread blocked on mutex `id` (they re-contend).
    fn unlocked(&self, id: usize) {
        let mut s = self.locked();
        for i in 0..s.states.len() {
            if s.states[i] == TState::Blocked(BlockOn::Lock(id)) {
                s.states[i] = TState::Runnable;
            }
        }
    }

    fn notify(&self, cond_id: usize, all: bool) {
        let mut s = self.locked();
        for i in 0..s.states.len() {
            if matches!(s.states[i], TState::Blocked(BlockOn::Cond { cond, .. }) if cond == cond_id)
            {
                s.states[i] = TState::Runnable;
                s.timed_out[i] = false;
                if !all {
                    break;
                }
            }
        }
    }

    /// Mark this thread finished, wake joiners, and pass the token on.
    fn finish(&self, me: usize) {
        let mut s = self.locked();
        s.states[me] = TState::Finished;
        for i in 0..s.states.len() {
            if s.states[i] == TState::Blocked(BlockOn::Join(me)) {
                s.states[i] = TState::Runnable;
            }
        }
        self.pick(&mut s);
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut s = self.locked();
        if payload.downcast_ref::<Teardown>().is_none() && s.panic.is_none() {
            s.panic = Some(payload);
        }
        s.tearing_down = true;
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut s = self.locked();
        loop {
            let live = s.states.iter().any(|t| !matches!(t, TState::Finished));
            if !live {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

thread_local! {
    /// (scheduler, my logical thread id) — set on every model thread.
    static CURRENT: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn with_current<R>(f: impl FnOnce(&StdArc<Scheduler>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(s, id)| f(s, *id)))
}

/// Schedule point on the calling thread; no-op outside [`model`]. Called
/// by every instrumented operation, and usable directly as
/// `loom::thread::yield_now`.
fn schedule_point() {
    if std::thread::panicking() {
        return;
    }
    let ctx = with_current(|s, id| (StdArc::clone(s), id));
    if let Some((s, id)) = ctx {
        s.yield_point(id);
    }
}

/// Number of timed-wait expiries the deadlock-breaker had to inject in
/// the *current* iteration. Correct wakeup protocols never need one: a
/// test can assert this is `0` to prove no wakeup was lost (the blocked
/// thread was always woken by a notify, never rescued by its timeout).
/// Returns 0 outside [`model`].
pub fn deadlock_breaks() -> usize {
    with_current(|s, _| s.locked().deadlock_breaks).unwrap_or(0)
}

fn spawn_logical<T: Send + 'static>(
    sched: &StdArc<Scheduler>,
    f: impl FnOnce() -> T + Send + 'static,
) -> thread::JoinHandle<T> {
    let id = sched.register();
    let slot: StdArc<StdMutex<Option<std::thread::Result<T>>>> = StdArc::new(StdMutex::new(None));
    let sc = StdArc::clone(sched);
    let out = StdArc::clone(&slot);
    let real = std::thread::spawn(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&sc), id)));
        let run = || {
            sc.wait_for_token(id);
            f()
        };
        let result = catch_unwind(AssertUnwindSafe(run));
        match result {
            Ok(v) => {
                *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
            }
            Err(payload) => {
                sc.record_panic(payload);
                *out.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Err(Box::new(Teardown) as Box<dyn Any + Send>));
            }
        }
        sc.finish(id);
    });
    sched.locked().handles[id] = Some(real);
    thread::JoinHandle {
        id,
        slot,
        _not_send: std::marker::PhantomData,
    }
}

fn max_iterations() -> usize {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Explore every schedule of `f` (up to `LOOM_MAX_ITERATIONS`). Panics
/// propagate out of the first failing iteration; exceeding the iteration
/// budget is itself a failure (the state space must be bounded).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let cap = max_iterations();
    for iter in 0.. {
        assert!(
            iter < cap,
            "loom shim: exceeded {cap} schedule iterations (set LOOM_MAX_ITERATIONS to raise)"
        );
        let sched = StdArc::new(Scheduler::new(prefix.clone()));
        let g = StdArc::clone(&f);
        let root = spawn_logical(&sched, move || g());
        {
            let mut s = sched.locked();
            sched.pick(&mut s);
        }
        sched.wait_all_finished();
        let handles: Vec<_> = {
            let mut s = sched.locked();
            s.handles.iter_mut().filter_map(Option::take).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        drop(root);
        let mut s = sched.locked();
        if let Some(p) = s.panic.take() {
            drop(s);
            resume_unwind(p);
        }
        // DFS backtrack: bump the deepest choice with an unexplored
        // sibling, truncating everything after it.
        let mut next: Option<Vec<usize>> = None;
        for i in (0..s.trace.len()).rev() {
            if s.trace[i].taken + 1 < s.trace[i].arity {
                let mut p: Vec<usize> = s.trace[..i].iter().map(|c| c.taken).collect();
                p.push(s.trace[i].taken + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
}

pub mod thread {
    //! Model-aware threads.
    use super::*;

    /// Handle to a logical model thread.
    pub struct JoinHandle<T> {
        pub(crate) id: usize,
        pub(crate) slot: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
        pub(crate) _not_send: std::marker::PhantomData<*const ()>,
    }

    /// Spawn a logical thread inside [`model`]. Panics if called outside.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let sched =
            with_current(|s, _| StdArc::clone(s)).expect("loom::thread::spawn outside loom::model");
        let h = spawn_logical(&sched, f);
        schedule_point();
        h
    }

    /// Explicit schedule point with loom's yield semantics: the calling
    /// thread is not scheduled again until every other runnable thread
    /// has had a chance to run, so yielding spin loops make progress
    /// visible instead of starving their peers.
    pub fn yield_now() {
        if std::thread::panicking() {
            return;
        }
        let ctx = with_current(|s, id| (StdArc::clone(s), id));
        if let Some((s, id)) = ctx {
            s.yield_soft(id);
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and take its result.
        pub fn join(self) -> std::thread::Result<T> {
            let ctx = with_current(|s, id| (StdArc::clone(s), id))
                .expect("loom JoinHandle::join outside loom::model");
            let (sched, me) = ctx;
            let finished = |s: &Sched| matches!(s.states.get(self.id), Some(TState::Finished));
            if !finished(&sched.locked()) {
                sched.block_on(me, BlockOn::Join(self.id));
            }
            self.slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("joined thread left no result")
        }
    }
}

pub mod sync {
    //! Model-aware `std::sync` lookalikes.
    use super::*;
    use std::ops::{Deref, DerefMut};

    /// Mutex/condvar instance ids (process-global; only intra-iteration
    /// identity matters).
    static NEXT_SYNC_ID: StdAtomicUsize = StdAtomicUsize::new(0);

    fn next_id() -> usize {
        NEXT_SYNC_ID.fetch_add(1, StdOrdering::Relaxed)
    }

    /// Model-checked `Arc`: clone, drop, `strong_count` and `get_mut` are
    /// schedule points, so receiver-side drops interleave with
    /// sender-side uniqueness checks under every explored schedule.
    #[derive(Debug)]
    pub struct Arc<T: ?Sized>(StdArc<T>);

    impl<T> Arc<T> {
        /// See `std::sync::Arc::new`.
        pub fn new(v: T) -> Self {
            Self(StdArc::new(v))
        }

        /// See `std::sync::Arc::strong_count` (schedule point).
        pub fn strong_count(this: &Self) -> usize {
            schedule_point();
            StdArc::strong_count(&this.0)
        }

        /// See `std::sync::Arc::get_mut` (schedule point).
        pub fn get_mut(this: &mut Self) -> Option<&mut T> {
            schedule_point();
            StdArc::get_mut(&mut this.0)
        }

        /// See `std::sync::Arc::as_ptr`.
        pub fn as_ptr(this: &Self) -> *const T {
            StdArc::as_ptr(&this.0)
        }

        /// See `std::sync::Arc::ptr_eq`.
        pub fn ptr_eq(a: &Self, b: &Self) -> bool {
            StdArc::ptr_eq(&a.0, &b.0)
        }
    }

    impl<T: ?Sized> Clone for Arc<T> {
        fn clone(&self) -> Self {
            schedule_point();
            Self(StdArc::clone(&self.0))
        }
    }

    impl<T: ?Sized> Drop for Arc<T> {
        fn drop(&mut self) {
            // The refcount decrement is a schedule point too (it is the
            // interesting half of the pool-uniqueness race), but never
            // reschedule while unwinding.
            schedule_point();
        }
    }

    impl<T: ?Sized> Deref for Arc<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    /// Model-checked mutex. Contended acquisition blocks the logical
    /// thread in the scheduler (no OS blocking, no spinning).
    #[derive(Debug)]
    pub struct Mutex<T> {
        inner: StdMutex<T>,
        id: usize,
    }

    /// RAII guard; unlocking is a schedule point.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// See `std::sync::Mutex::new`.
        pub fn new(v: T) -> Self {
            Self {
                inner: StdMutex::new(v),
                id: next_id(),
            }
        }

        fn acquire(&self) -> std::sync::MutexGuard<'_, T> {
            let ctx = with_current(|s, id| (StdArc::clone(s), id));
            match ctx {
                Some((sched, me)) => loop {
                    match self.inner.try_lock() {
                        Ok(g) => return g,
                        Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
                        Err(std::sync::TryLockError::WouldBlock) => {
                            sched.block_on(me, BlockOn::Lock(self.id));
                        }
                    }
                },
                None => self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// See `std::sync::Mutex::lock`; acquisition is a schedule point
        /// and never reports poisoning.
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            schedule_point();
            Ok(MutexGuard {
                lock: self,
                inner: Some(self.acquire()),
            })
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            self.inner.take();
            let ctx = with_current(|s, id| (StdArc::clone(s), id));
            if let Some((sched, _me)) = ctx {
                sched.unlocked(self.lock.id);
                schedule_point();
            }
        }
    }

    impl<'a, T> Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard live")
        }
    }

    impl<'a, T> DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard live")
        }
    }

    /// Result of a timed condvar wait.
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult(pub(crate) bool);

    impl WaitTimeoutResult {
        /// True when the wait ended by timeout rather than a notify.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Model-checked condvar. In the model, a timed wait "times out" only
    /// when every other thread is blocked (the only moment time passes);
    /// an untimed wait with no possible notifier is a detected deadlock.
    #[derive(Debug)]
    pub struct Condvar {
        std: StdCondvar,
        id: usize,
    }

    impl Condvar {
        /// See `std::sync::Condvar::new`.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self {
                std: StdCondvar::new(),
                id: next_id(),
            }
        }

        fn wait_inner<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timed: bool,
            dur: Option<Duration>,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            let ctx = with_current(|s, id| (StdArc::clone(s), id));
            match ctx {
                Some((sched, me)) => {
                    // Release the mutex and register as a waiter in ONE
                    // scheduler transaction — a notify between the two
                    // would otherwise be lost (the race real condvars
                    // close by releasing-and-registering atomically).
                    let lock = guard.lock;
                    let mut g = guard;
                    let std_guard = g.inner.take().expect("guard live");
                    std::mem::forget(g); // side effects done manually below
                    {
                        let mut s = sched.locked();
                        s.states[me] = TState::Blocked(BlockOn::Cond {
                            cond: self.id,
                            timed,
                        });
                        drop(std_guard);
                        for i in 0..s.states.len() {
                            if s.states[i] == TState::Blocked(BlockOn::Lock(lock.id)) {
                                s.states[i] = TState::Runnable;
                            }
                        }
                        sched.pick(&mut s);
                    }
                    sched.wait_for_token(me);
                    let timed_out = {
                        let mut s = sched.locked();
                        std::mem::take(&mut s.timed_out[me])
                    };
                    (
                        MutexGuard {
                            lock,
                            inner: Some(lock.acquire()),
                        },
                        WaitTimeoutResult(timed_out),
                    )
                }
                None => {
                    // Passthrough outside the model: real std wait.
                    let lock = guard.lock;
                    let mut g = guard;
                    let std_guard = g.inner.take().expect("guard live");
                    drop(g);
                    match dur {
                        Some(d) => {
                            let (sg, r) = self
                                .std
                                .wait_timeout(std_guard, d)
                                .unwrap_or_else(PoisonError::into_inner);
                            (
                                MutexGuard {
                                    lock,
                                    inner: Some(sg),
                                },
                                WaitTimeoutResult(r.timed_out()),
                            )
                        }
                        None => {
                            let sg = self
                                .std
                                .wait(std_guard)
                                .unwrap_or_else(PoisonError::into_inner);
                            (
                                MutexGuard {
                                    lock,
                                    inner: Some(sg),
                                },
                                WaitTimeoutResult(false),
                            )
                        }
                    }
                }
            }
        }

        /// See `std::sync::Condvar::wait`.
        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            let (g, _) = self.wait_inner(guard, false, None);
            Ok(g)
        }

        /// See `std::sync::Condvar::wait_timeout`.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            Ok(self.wait_inner(guard, true, Some(dur)))
        }

        /// See `std::sync::Condvar::notify_one`. Wakes the lowest-id
        /// waiter (deterministic; wake order is not a branching choice).
        pub fn notify_one(&self) {
            self.std.notify_one();
            if let Some((sched, _)) = with_current(|s, id| (StdArc::clone(s), id)) {
                sched.notify(self.id, false);
                schedule_point();
            }
        }

        /// See `std::sync::Condvar::notify_all`.
        pub fn notify_all(&self) {
            self.std.notify_all();
            if let Some((sched, _)) = with_current(|s, id| (StdArc::clone(s), id)) {
                sched.notify(self.id, true);
                schedule_point();
            }
        }
    }

    pub mod atomic {
        //! Model-aware atomics: every access is a schedule point;
        //! orderings are accepted and ignored (SC semantics only).
        use super::schedule_point;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $std:ty, $ty:ty) => {
                /// Model-checked atomic (see the module docs).
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// See the `std::sync::atomic` counterpart.
                    pub fn new(v: $ty) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// See the `std::sync::atomic` counterpart.
                    pub fn load(&self, _: Ordering) -> $ty {
                        schedule_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// See the `std::sync::atomic` counterpart.
                    pub fn store(&self, v: $ty, _: Ordering) {
                        schedule_point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// See the `std::sync::atomic` counterpart.
                    pub fn swap(&self, v: $ty, _: Ordering) -> $ty {
                        schedule_point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// See the `std::sync::atomic` counterpart.
                    pub fn compare_exchange(
                        &self,
                        cur: $ty,
                        new: $ty,
                        _: Ordering,
                        _: Ordering,
                    ) -> Result<$ty, $ty> {
                        schedule_point();
                        self.0
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_shim!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        impl AtomicBool {
            /// See `std::sync::atomic::AtomicBool::fetch_or`.
            pub fn fetch_or(&self, v: bool, _: Ordering) -> bool {
                schedule_point();
                self.0.fetch_or(v, Ordering::SeqCst)
            }
        }

        impl AtomicUsize {
            /// See `std::sync::atomic::AtomicUsize::fetch_add`.
            pub fn fetch_add(&self, v: usize, _: Ordering) -> usize {
                schedule_point();
                self.0.fetch_add(v, Ordering::SeqCst)
            }
        }

        impl AtomicU64 {
            /// See `std::sync::atomic::AtomicU64::fetch_add`.
            pub fn fetch_add(&self, v: u64, _: Ordering) -> u64 {
                schedule_point();
                self.0.fetch_add(v, Ordering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use std::sync::Mutex as StdMutex;

    /// Two racing load-then-store increments must lose an update in some
    /// explored schedule — the classic interleaving the model must find.
    #[test]
    fn model_finds_lost_update() {
        let finals: std::sync::Arc<StdMutex<Vec<usize>>> =
            std::sync::Arc::new(StdMutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&finals);
        super::model(move || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            sink.lock().unwrap().push(n.load(Ordering::SeqCst));
        });
        let finals = finals.lock().unwrap();
        assert!(finals.contains(&2), "sequential schedules explored");
        assert!(
            finals.contains(&1),
            "the lost-update interleaving must be explored (finals: {finals:?})"
        );
    }

    /// Atomic fetch_add never loses an update under any schedule.
    #[test]
    fn model_passes_correct_counter() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    /// ABBA lock ordering must be detected as a deadlock, not a hang.
    #[test]
    fn model_detects_deadlock() {
        let res = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = super::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                let _ = t.join();
            });
        });
        let err = res.expect_err("ABBA must deadlock in some schedule");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "diagnostic: {msg}");
    }

    /// A waiting thread woken only by notify: no deadlock-break needed,
    /// and the handoff completes under every schedule.
    #[test]
    fn condvar_handoff_needs_no_timeout_rescue() {
        super::model(|| {
            let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
            let s2 = Arc::clone(&slot);
            let t = super::thread::spawn(move || {
                let (m, cv) = (&s2.0, &s2.1);
                let mut g = m.lock().unwrap();
                *g = Some(7);
                drop(g);
                cv.notify_one();
            });
            let (m, cv) = (&slot.0, &slot.1);
            let mut g = m.lock().unwrap();
            while g.is_none() {
                g = cv
                    .wait_timeout(g, std::time::Duration::from_secs(60))
                    .unwrap()
                    .0;
            }
            assert_eq!(*g, Some(7));
            drop(g);
            t.join().unwrap();
            assert_eq!(super::deadlock_breaks(), 0, "no lost wakeup");
        });
    }
}

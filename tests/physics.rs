//! Cross-crate physics validation: the parallel stack must reproduce
//! textbook molecular-dynamics behaviour, not just agree with itself.

use pcdlb::md::observe;
use pcdlb::sim::{run, run_serial, RunConfig};

#[test]
fn nve_energy_conservation_through_the_parallel_stack() {
    // Thermostat off, no pull: kinetic + potential must be conserved to
    // fine tolerance across hundreds of parallel steps (migration, ghost
    // exchange and DLB must not leak energy).
    let mut cfg = RunConfig::from_p_m_density(9, 2, 0.20);
    cfg.steps = 300;
    cfg.thermostat_interval = 0;
    cfg.dlb = true;
    let report = run(&cfg);
    let e0 = report.records[0].kinetic + report.records[0].potential;
    let e1 = {
        let r = report.records.last().unwrap();
        r.kinetic + r.potential
    };
    let scale = e0.abs().max(1.0);
    assert!(
        ((e1 - e0) / scale).abs() < 2e-3,
        "NVE drift through the parallel stack: {e0} → {e1}"
    );
}

#[test]
fn thermostat_holds_the_paper_temperature() {
    let mut cfg = RunConfig::from_p_m_density(9, 2, 0.256);
    cfg.steps = 150;
    cfg.thermostat_interval = 50; // the paper's interval
    let report = run(&cfg);
    // On rescale steps the temperature is exactly T*.
    for r in report.records.iter().filter(|r| r.step % 50 == 0) {
        assert!(
            (r.temperature - 0.722).abs() < 1e-9,
            "step {}: T = {}",
            r.step,
            r.temperature
        );
    }
}

#[test]
fn supercooled_gas_stays_physical_over_a_longer_run() {
    // The paper's natural workload (no driver): T* pinned, energy finite,
    // momentum preserved — run through the full parallel stack.
    let mut cfg = RunConfig::from_p_m_density(9, 2, 0.256);
    cfg.steps = 500;
    let report = run(&cfg);
    for r in &report.records {
        assert!(r.kinetic.is_finite() && r.potential.is_finite());
        assert!(
            r.temperature > 0.3 && r.temperature < 1.5,
            "T = {}",
            r.temperature
        );
    }
}

#[test]
fn serial_and_parallel_observables_agree() {
    // Beyond bitwise particle-state agreement (tested in pcdlb-sim):
    // the *observables* computed through the two paths agree too.
    let mut cfg = RunConfig::from_p_m_density(9, 2, 0.25);
    cfg.steps = 40;
    cfg.seed = 5;
    let report = run(&cfg);
    let serial_final = run_serial(&cfg);
    let t_serial = observe::temperature(serial_final.iter().map(|p| p.vel));
    let t_parallel = report.records.last().unwrap().temperature;
    assert!(
        (t_serial - t_parallel).abs() < 1e-12,
        "temperatures diverged: serial {t_serial}, parallel {t_parallel}"
    );
}

#[test]
fn work_model_load_tracks_particle_distribution() {
    // A clustered start means the loaded PE's force time dominates; as
    // DLB balances, Fmax/Fave must come down.
    let mut cfg = RunConfig::from_p_m_density(9, 3, 0.128);
    cfg.lattice = pcdlb::sim::Lattice::Cluster { fill: 0.45 };
    cfg.steps = 200;
    cfg.dlb = true;
    let report = run(&cfg);
    let early = report.records[2].f_max / report.records[2].f_ave;
    let late = {
        let r = report.records.last().unwrap();
        r.f_max / r.f_ave
    };
    assert!(
        late < early,
        "DLB should reduce the Fmax/Fave ratio: early {early:.2}, late {late:.2}"
    );
}

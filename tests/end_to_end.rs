//! Cross-crate integration tests: the full stack — message passing,
//! domain decomposition, MD physics, permanent-cell DLB, metrics and
//! theory — exercised together on realistic (small) workloads.

use pcdlb::core::theory;
use pcdlb::sim::{run, Lattice, RunConfig};

fn concentrating_cfg(p: usize, m: usize, steps: u64) -> RunConfig {
    let mut cfg = RunConfig::from_p_m_density(p, m, 0.256);
    cfg.steps = steps;
    cfg.central_pull = 0.08;
    cfg.pull_corner = true;
    cfg.dlb = true;
    cfg.dlb_min_gain = 0.05;
    cfg
}

#[test]
fn dlb_limit_is_never_exceeded() {
    // The permanent cells cap any PE's domain at (m² + 3(m−1)²)·nc cells
    // (paper Fig. 4). Drive a hard corner hotspot and verify the cap.
    let cfg = concentrating_cfg(9, 3, 400);
    let report = run(&cfg);
    let cap = theory::max_domain_cells(cfg.m(), cfg.nc);
    for r in &report.records {
        assert!(
            r.max_cells <= cap,
            "step {}: busiest PE has {} cells, DLB limit is {cap}",
            r.step,
            r.max_cells
        );
    }
    // The hotspot actually pushed some PE toward the cap.
    let reached = report.records.iter().map(|r| r.max_cells).max().unwrap();
    assert!(
        reached > cfg.m() * cfg.m() * cfg.nc,
        "expected some domain growth, got {reached}"
    );
}

#[test]
fn dlb_beats_ddm_on_a_concentrated_workload() {
    // The paper's headline claim, end to end: on a concentrating system,
    // DLB-DDM's late-phase execution time beats plain DDM's.
    let dlb = concentrating_cfg(9, 4, 700);
    let mut ddm = dlb.clone();
    ddm.dlb = false;
    dlb.validate();
    let rep_dlb = run(&dlb);
    let rep_ddm = run(&ddm);
    let from = 550;
    let t_dlb = rep_dlb.mean_t_step(from, 700);
    let t_ddm = rep_ddm.mean_t_step(from, 700);
    assert!(
        t_dlb < t_ddm,
        "late-phase DLB {t_dlb} should beat DDM {t_ddm}"
    );
}

#[test]
fn concentration_metrics_are_consistent_with_run_state() {
    let cfg = concentrating_cfg(9, 2, 300);
    let report = run(&cfg);
    for r in &report.records {
        assert!((0.0..=1.0).contains(&r.c0_over_c), "C0/C out of range");
        assert!(r.n_factor >= 1.0, "n below 1");
        assert!(r.f_min <= r.f_ave && r.f_ave <= r.f_max);
        assert!(
            r.t_step >= r.f_max,
            "Tt must include the slowest PE's force time"
        );
    }
    // Corner pull concentrates: the empty fraction must grow materially.
    let first = report.records.first().unwrap().c0_over_c;
    let last = report.records.last().unwrap().c0_over_c;
    assert!(last > first, "C0/C did not grow: {first} → {last}");
}

#[test]
fn boundary_pipeline_finds_a_point_below_theory() {
    // Full Fig.-10 style pipeline on one cell: the experimental boundary
    // exists and sits below the theoretical bound (E/T < 1).
    let b = pcdlb_bench::measure_boundary(9, 3, 0.256, 1500, 0.10, 1)
        .expect("boundary within 1500 steps");
    assert!(b.n >= 1.0);
    assert!(b.c0_over_c > 0.0);
    assert!(
        b.e_over_t() < 1.0,
        "experimental boundary {} must be below theory {}",
        b.c0_over_c,
        b.theory
    );
}

#[test]
fn cluster_start_respects_eight_neighbor_communication() {
    // The ghost-exchange path asserts (via panics) that no PE ever needs
    // data from outside its 8-neighbourhood; a hard clustered start with
    // heavy DLB traffic exercises exactly that invariant.
    let mut cfg = RunConfig::from_p_m_density(16, 3, 0.128);
    cfg.lattice = Lattice::Cluster { fill: 0.4 };
    cfg.steps = 120;
    cfg.dlb = true;
    let report = run(&cfg);
    assert_eq!(report.records.len(), 120);
    let transfers: u32 = report.records.iter().map(|r| r.transfers).sum();
    assert!(
        transfers > 0,
        "clustered start should trigger DLB transfers"
    );
}

#[test]
fn report_serializes_round_trip() {
    // Derived series and the hand-rolled TSV dump must stay aligned with
    // the per-step records.
    let cfg = concentrating_cfg(9, 2, 60);
    let report = run(&cfg);
    let series = report.imbalance_series();
    assert_eq!(series.len(), report.records.len());
    let traj = report.concentration_trajectory();
    assert_eq!(traj.len(), report.records.len());
    for (t, r) in traj.iter().zip(&report.records) {
        assert_eq!(t.step, r.step);
    }
    let tsv = report.to_tsv();
    // Header + one row per record + four `# key value` total lines.
    assert_eq!(tsv.lines().count(), 1 + report.records.len() + 4);
}

//! Quickstart: run a small parallel MD simulation with permanent-cell
//! dynamic load balancing and print what happened.
//!
//!     cargo run --release --example quickstart
//!
//! Nine PEs (threads) share a supercooled Lennard-Jones gas whose
//! particles are slowly driven toward the box centre, so the load
//! concentrates; the permanent-cell balancer hands cell columns to faster
//! PEs while preserving the 8-neighbour communication pattern.

use pcdlb::sim::{run, RunConfig};

fn main() {
    // 9 PEs, m = 3 (a 9×9×9 cell grid), supercooled-gas density.
    let mut cfg = RunConfig::from_p_m_density(9, 3, 0.256);
    cfg.steps = 300;
    cfg.central_pull = 0.08; // concentration driver (see DESIGN.md)
    cfg.dlb = true;
    cfg.dlb_min_gain = 0.05;

    println!(
        "Running {} particles on {} PEs ({}³ cells, m = {}) for {} steps…",
        cfg.n_particles,
        cfg.p,
        cfg.nc,
        cfg.m(),
        cfg.steps
    );
    let report = run(&cfg);

    println!("\nstep   T*      C0/C    n      Fmax-Fmin[s]  transfers");
    for r in report.records.iter().filter(|r| r.step % 50 == 0) {
        println!(
            "{:5}  {:.3}  {:.4}  {:.2}   {:.6}      {}",
            r.step,
            r.temperature,
            r.c0_over_c,
            r.n_factor,
            r.imbalance(),
            r.transfers
        );
    }

    let transfers: u32 = report.records.iter().map(|r| r.transfers).sum();
    println!("\nDLB moved {transfers} cell columns over the run.");
    println!(
        "Communication: {} messages, {:.1} MB (modelled {:.3} s on a T3E-like interconnect).",
        report.msgs_sent,
        report.bytes_sent as f64 / 1e6,
        report.comm_virtual_s
    );
    let last = report.records.last().expect("ran steps");
    println!(
        "Final state: T* = {:.3}, E_pot = {:.1}, {:.1}% of cells empty.",
        last.temperature,
        last.potential,
        100.0 * last.c0_over_c
    );
}

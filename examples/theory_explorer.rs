//! Exploring the theoretical side of the paper (Sec. 4.1) numerically —
//! no simulation, just the closed forms.
//!
//!     cargo run --release --example theory_explorer
//!
//! Prints the DLB limit ratios, the upper-bound curves f(m, n) the paper
//! plots in Fig. 10, the monotonicity relation of Eq. 12, and a check
//! that the closed form is exactly the frontier of the feasibility
//! inequality (Eq. 3).

use pcdlb::core::theory;

fn main() {
    println!("Permanent-cell DLB limits (paper Fig. 4):");
    for m in 1..=6 {
        println!(
            "  m = {m}: a PE may grow to {:.3}× its initial cells \
             ({} movable + {} permanent columns per tile)",
            theory::dlb_limit_ratio(m),
            pcdlb::core::movable_count(m),
            pcdlb::core::permanent_count(m),
        );
    }

    println!("\nTheoretical upper bounds f(m, n) = 3(m-1)^2 / (m^2(n-1) + 3n(m-1)^2):");
    println!("  (Eqs. 9-11: f(2,n) = 3/(7n-4), f(3,n) = 4/(7n-3), f(4,n) = 27/(43n-16))");
    print!("  n      ");
    for m in 2..=4 {
        print!("f({m},n)   ");
    }
    println!();
    let mut n = 1.0;
    while n <= 3.0 + 1e-9 {
        print!("  {n:.2}  ");
        for m in 2..=4 {
            print!("  {:.4} ", theory::upper_bound(m, n));
        }
        println!();
        n += 0.25;
    }

    println!("\nEq. 12 (f(2,n) <= f(3,n) <= f(4,n)) spot check at n = 1.7 (paper Fig. 8's value):");
    let f = [2, 3, 4].map(|m| theory::upper_bound(m, 1.7));
    println!("  {:.4} <= {:.4} <= {:.4}", f[0], f[1], f[2]);
    assert!(f[0] <= f[1] && f[1] <= f[2]);

    println!("\nFrontier check: f(m, n) solves the feasibility inequality (Eq. 3) exactly.");
    for m in [2usize, 3, 4] {
        for n in [1.2, 1.7, 2.5] {
            let bound = theory::upper_bound(m, n);
            let inside = theory::uniform_balance_feasible(m, 36, n, (bound - 0.01).max(0.0));
            let outside = theory::uniform_balance_feasible(m, 36, n, (bound + 0.01).min(0.99));
            println!(
                "  m = {m}, n = {n}: f = {bound:.4}; just below feasible = {inside}, just above = {outside}"
            );
            assert!(inside && !outside);
        }
    }
    println!("\nAll theory checks passed.");
}

//! One physics, three machines: the same Lennard-Jones system run through
//! all three domain decompositions of the paper's Fig. 2 — plane (ring),
//! square pillar (2-D torus) and cube (3-D torus) — plus the serial
//! reference.
//!
//!     cargo run --release --example three_decompositions
//!
//! Every parallel variant reproduces the serial trajectory **bitwise**
//! (the example verifies it), while their communication profiles differ
//! exactly the way the paper's Sec. 2.2 argues.

use pcdlb::md::Particle;
use pcdlb::sim::cube::run_cube_with_snapshot;
use pcdlb::sim::plane::run_plane_with_snapshot;
use pcdlb::sim::{run_serial, run_with_snapshot, RunConfig, RunReport};

fn check(label: &str, snap: &[Particle], reference: &[Particle], rep: &RunReport, p: usize) {
    let identical = snap.len() == reference.len()
        && snap
            .iter()
            .zip(reference)
            .all(|(a, b)| a.id == b.id && a.pos == b.pos && a.vel == b.vel);
    assert!(
        identical,
        "{label}: trajectory diverged from the serial reference!"
    );
    let steps = rep.records.len() as f64;
    println!(
        "{label:<14} P={p:<3} bitwise = serial ✓   {:6.1} msgs/PE/step, {:7.1} KiB/PE/step",
        rep.msgs_sent as f64 / (p as f64 * steps),
        rep.bytes_sent as f64 / (p as f64 * steps) / 1024.0,
    );
}

fn main() {
    // nc = 8 cells/side fits a 2×2 pillar grid, a 4-slab ring and a
    // 2×2×2 cube grid simultaneously.
    let nc = 8;
    let density = 0.25;
    let n = (density * (2.56 * nc as f64).powi(3)).round() as usize;
    let mut cfg = RunConfig::new(n, nc, 4, density);
    cfg.steps = 50;
    cfg.dlb = false;
    println!(
        "Supercooled LJ gas, N = {n}, {nc}³ cells, {} steps — running four ways…\n",
        cfg.steps
    );

    let reference = run_serial(&cfg);
    println!("serial reference: {} particles evolved", reference.len());

    let (rep, snap) = run_with_snapshot(&cfg);
    check("square pillar", &snap, &reference, &rep, cfg.p);

    let (rep, snap) = run_plane_with_snapshot(&cfg);
    check("plane (ring)", &snap, &reference, &rep, cfg.p);

    let mut cube_cfg = cfg.clone();
    cube_cfg.p = 8;
    let (rep, snap) = run_cube_with_snapshot(&cube_cfg);
    check("cube (3-D)", &snap, &reference, &rep, cube_cfg.p);

    println!(
        "\nAll three parallel decompositions reproduced the serial trajectory \
         bit for bit.\nDomain shape changes who talks to whom — never the physics."
    );
}

//! Droplet condensation — the paper's physical scenario, end to end.
//!
//!     cargo run --release --example droplet
//!
//! A supercooled Lennard-Jones gas (T* = 0.722, below the boiling point;
//! ρ* = 0.256) is integrated with the periodic velocity-rescaling
//! thermostat of the paper. Density fluctuations grow and the gas begins
//! to condense; the cell-occupancy histogram and the fraction of empty
//! cells `C₀/C` make the clustering visible, and the force-time spread
//! shows why plain domain decomposition loses its balance.
//!
//! This example runs the *natural* dynamics (no concentration driver), so
//! clustering is gradual — pass a step count to watch it longer:
//!
//!     cargo run --release --example droplet -- 3000

use pcdlb::md::{analysis, observe};
use pcdlb::sim::{serial_sim, RunConfig};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("steps must be an integer"))
        .unwrap_or(1200);

    // The paper's Fig. 5(b) geometry, shrunk to one PE's worth of work:
    // the serial engine is enough to show the physics.
    let mut cfg = RunConfig::from_p_m_density(9, 2, 0.256);
    cfg.steps = steps;
    println!(
        "Supercooled LJ gas: N = {}, ρ* = {}, T* = {}, Δt = {}, {} steps",
        cfg.n_particles, cfg.density, cfg.t_ref, cfg.dt, steps
    );

    let mut sim = serial_sim(&cfg);
    println!("\nstep    T*      E_kin      E_pot      C0/C   occupancy histogram (0,1,2,3,4,5+)");
    for step in 1..=steps {
        let info = sim.step();
        if step % (steps / 12).max(1) == 0 {
            let grid = sim.grid();
            let c0 = grid.empty_cells() as f64 / grid.total_cells() as f64;
            let hist = grid.occupancy_histogram(5);
            println!(
                "{step:6}  {:.3}  {:9.1}  {:9.1}  {:.3}  {:?}",
                info.temperature, info.kinetic, info.potential, c0, hist
            );
        }
    }

    let parts = sim.snapshot();
    let t_final = observe::temperature(parts.iter().map(|p| p.vel));
    println!(
        "\nAfter {steps} steps: T* = {t_final:.3}, {:.1}% of cells empty \
         (clusters leave voids behind — the load imbalance the paper's DLB fixes).",
        100.0 * sim.grid().empty_cells() as f64 / sim.grid().total_cells() as f64
    );

    // Structure check: the radial distribution function. A gas shows a
    // weak first peak; a condensing system grows a tall liquid-like peak
    // near r = 2^(1/6) ≈ 1.12 with layering beyond it.
    let g = analysis::radial_distribution(&parts, cfg.box_len(), 5.0, 25);
    println!("\nradial distribution g(r):");
    println!("  r      g(r)");
    for (r, v) in g.iter().filter(|(r, _)| *r > 0.8) {
        let bar = "#".repeat((v * 8.0).min(60.0) as usize);
        println!("  {r:4.2}  {v:6.2}  {bar}");
    }
    let peak = g
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("bins");
    println!(
        "first-shell peak g({:.2}) = {:.2} — {}",
        peak.0,
        peak.1,
        if peak.1 > 2.0 {
            "liquid-like local structure has formed"
        } else {
            "still gas-like; run more steps to watch the droplet grow"
        }
    );
}

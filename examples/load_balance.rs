//! Watching the permanent-cell balancer work, PE by PE.
//!
//!     cargo run --release --example load_balance
//!
//! Starts from a deliberately unbalanced state — all particles clustered
//! in one corner of the box (`Lattice::Cluster`) — and runs the same
//! workload twice: plain DDM, then DLB-DDM. Prints each PE's owned-cell
//! count and the force-time spread, showing ownership flow toward the
//! loaded corner while the 8-neighbour pattern stays intact (the run
//! would panic otherwise — ghost exchange asserts it).

use pcdlb::core::theory;
use pcdlb::sim::{run, Lattice, RunConfig};

fn main() {
    let mut cfg = RunConfig::from_p_m_density(9, 3, 0.128);
    cfg.lattice = Lattice::Cluster { fill: 0.45 };
    cfg.steps = 250;
    cfg.dlb_min_gain = 0.02;

    println!(
        "Clustered start: {} particles packed into the corner 45% of a {}-cell box, 9 PEs (m = 3).",
        cfg.n_particles,
        cfg.total_cells()
    );
    println!(
        "The DLB limit allows a PE to grow to {:.2}× its initial cells (paper Fig. 4: m = 3 → ~2.3×).\n",
        theory::dlb_limit_ratio(cfg.m())
    );

    for dlb in [false, true] {
        let mut c = cfg.clone();
        c.dlb = dlb;
        let label = if dlb { "DLB-DDM" } else { "DDM" };
        let report = run(&c);
        let late = &report.records[report.records.len() - 50..];
        let fmax = late.iter().map(|r| r.f_max).sum::<f64>() / late.len() as f64;
        let fave = late.iter().map(|r| r.f_ave).sum::<f64>() / late.len() as f64;
        let fmin = late.iter().map(|r| r.f_min).sum::<f64>() / late.len() as f64;
        let transfers: u32 = report.records.iter().map(|r| r.transfers).sum();
        let max_cells = late.last().expect("records").max_cells;
        println!("{label:8}: Fmax {fmax:.6}s  Fave {fave:.6}s  Fmin {fmin:.6}s");
        println!(
            "          imbalance (Fmax/Fave) {:.2}, busiest PE holds {max_cells} cells, {transfers} transfers",
            fmax / fave
        );
        if dlb {
            println!(
                "          largest domain grew to {:.2}× its initial size (limit {:.2}×)",
                max_cells as f64 / (cfg.m() * cfg.m() * cfg.nc) as f64,
                theory::dlb_limit_ratio(cfg.m())
            );
        }
        println!();
    }
}
